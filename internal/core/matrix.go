package core

import (
	"fmt"
	"strings"

	"softsec/internal/harness"
)

// StandardConfigs are the countermeasure columns of the T1 matrix: from
// the unprotected historical platform through today's default stack
// (canary+DEP+ASLR) to the checked dialect of Section III-C2.
func StandardConfigs() []Mitigations {
	return []Mitigations{
		{},
		{Canary: true, CanarySeed: 7},
		{DEP: true},
		{ASLR: true, ASLRSeed: 42},
		{Canary: true, CanarySeed: 7, DEP: true, ASLR: true, ASLRSeed: 42},
		{Checked: true, DEP: true},
	}
}

// canaryMix decorrelates the canary seed from the ASLR seed when both
// derive from the same per-trial seed.
const canaryMix = int64(0x5eed_caba_11ed_c0de)

// nonzeroSeed keeps a derived seed away from zero, which the kernel
// treats as "use the predictable default canary" — a semantic a random
// sweep must never hit by accident.
func nonzeroSeed(s int64) int64 {
	if s == 0 {
		return 1
	}
	return s
}

// TrialScenario wraps one (attack, mitigation) cell as a harness
// scenario. When perTrialSeeds is set, each trial re-randomizes what the
// config randomizes: the ASLR layout seed, and the canary value when the
// config uses an unpredictable canary (CanarySeed != 0 — a zero seed
// deliberately models the predictable default canary and is preserved).
// Deterministic configs simply repeat, which is what makes success *rates*
// meaningful for the randomized ones.
func TrialScenario(a AttackSpec, cfg Mitigations, perTrialSeeds bool) harness.Scenario {
	label := cfg.String()
	sc := harness.Scenario{
		Name:  "t1/" + a.Name + "/" + label,
		Group: "t1",
		Meta:  map[string]string{"attack": a.Name, "mitigation": label},
		Run: func(t harness.Trial) harness.TrialResult {
			m := cfg
			if perTrialSeeds {
				if m.ASLR {
					m.ASLRSeed = t.Seed
				}
				if m.Canary && m.CanarySeed != 0 {
					m.CanarySeed = nonzeroSeed(t.Seed ^ canaryMix)
				}
			}
			return runTrialCell(a, m, t.Telemetry)
		},
	}
	// A cell whose effective config never changes across trials — no
	// per-trial reseeding at all, or a config the reseeding rule leaves
	// untouched — always loads the same victim at the same layout, so
	// workers may serve its trials from a warm snapshot.
	if !perTrialSeeds || !warmReseeds(cfg) {
		sc.Warm = warmCellSpec(a, cfg)
	}
	return sc
}

// T1Scenarios builds the full attack × mitigation grid as harness
// scenarios, in row-major order.
func T1Scenarios(attacks []AttackSpec, configs []Mitigations, perTrialSeeds bool) []harness.Scenario {
	var out []harness.Scenario
	for _, a := range attacks {
		for _, cfg := range configs {
			out = append(out, TrialScenario(a, cfg, perTrialSeeds))
		}
	}
	return out
}

// Cell is one matrix entry.
type Cell struct {
	Attack     string
	Mitigation string
	Outcome    Outcome
	Err        error
}

// Matrix is the result grid of attacks × mitigation configurations.
type Matrix struct {
	Attacks     []string
	Mitigations []string
	Cells       map[string]map[string]Cell // attack -> mitigation -> cell
}

// RunMatrix executes every attack under every configuration, serially.
func RunMatrix(attacks []AttackSpec, configs []Mitigations) *Matrix {
	return RunMatrixJobs(attacks, configs, 1)
}

// RunMatrixJobs executes the matrix with the configured seeds (one trial
// per cell), spreading cells across a harness worker pool of the given
// width. Results are independent of jobs.
func RunMatrixJobs(attacks []AttackSpec, configs []Mitigations, jobs int) *Matrix {
	m := &Matrix{Cells: make(map[string]map[string]Cell)}
	for _, cfg := range configs {
		m.Mitigations = append(m.Mitigations, cfg.String())
	}
	for _, a := range attacks {
		m.Attacks = append(m.Attacks, a.Name)
		m.Cells[a.Name] = make(map[string]Cell)
	}
	scenarios := T1Scenarios(attacks, configs, false)
	rep := harness.Run(scenarios, harness.Options{Trials: 1, Jobs: jobs})
	for i, sc := range scenarios {
		r := rep.Results[i][0]
		cell := Cell{
			Attack:     sc.Meta["attack"],
			Mitigation: sc.Meta["mitigation"],
			Outcome:    Outcome(r.Code),
			Err:        r.Err,
		}
		m.Cells[cell.Attack][cell.Mitigation] = cell
	}
	return m
}

// Get returns the cell for (attack, mitigation label).
func (m *Matrix) Get(attack, mitigation string) (Cell, bool) {
	row, ok := m.Cells[attack]
	if !ok {
		return Cell{}, false
	}
	c, ok := row[mitigation]
	return c, ok
}

// Render formats the matrix as an aligned text table (the reproduction's
// T1/T3 artifacts).
func (m *Matrix) Render() string {
	var b strings.Builder
	w := 0
	for _, a := range m.Attacks {
		if len(a) > w {
			w = len(a)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, "attack \\ defense")
	if w+2 < len("attack \\ defense")+2 {
		w = len("attack \\ defense")
	}
	b.Reset()
	fmt.Fprintf(&b, "%-*s", w+2, "attack")
	for _, mit := range m.Mitigations {
		fmt.Fprintf(&b, " | %-16s", mit)
	}
	b.WriteString("\n")
	for _, a := range m.Attacks {
		fmt.Fprintf(&b, "%-*s", w+2, a)
		for _, mit := range m.Mitigations {
			c := m.Cells[a][mit]
			val := c.Outcome.String()
			if c.Err != nil {
				val = "ERROR"
			}
			fmt.Fprintf(&b, " | %-16s", val)
		}
		b.WriteString("\n")
	}
	return b.String()
}
