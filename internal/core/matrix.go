package core

import (
	"fmt"
	"strings"
)

// StandardConfigs are the countermeasure columns of the T1 matrix: from
// the unprotected historical platform through today's default stack
// (canary+DEP+ASLR) to the checked dialect of Section III-C2.
func StandardConfigs() []Mitigations {
	return []Mitigations{
		{},
		{Canary: true, CanarySeed: 7},
		{DEP: true},
		{ASLR: true, ASLRSeed: 42},
		{Canary: true, CanarySeed: 7, DEP: true, ASLR: true, ASLRSeed: 42},
		{Checked: true, DEP: true},
	}
}

// Cell is one matrix entry.
type Cell struct {
	Attack     string
	Mitigation string
	Outcome    Outcome
	Err        error
}

// Matrix is the result grid of attacks × mitigation configurations.
type Matrix struct {
	Attacks     []string
	Mitigations []string
	Cells       map[string]map[string]Cell // attack -> mitigation -> cell
}

// RunMatrix executes every attack under every configuration.
func RunMatrix(attacks []AttackSpec, configs []Mitigations) *Matrix {
	m := &Matrix{Cells: make(map[string]map[string]Cell)}
	for _, cfg := range configs {
		m.Mitigations = append(m.Mitigations, cfg.String())
	}
	for _, a := range attacks {
		m.Attacks = append(m.Attacks, a.Name)
		row := make(map[string]Cell)
		for _, cfg := range configs {
			cell := Cell{Attack: a.Name, Mitigation: cfg.String()}
			s, err := a.Scenario(cfg)
			if err != nil {
				cell.Err = err
			} else {
				res, err := Run(s, cfg)
				if err != nil {
					cell.Err = err
				} else {
					cell.Outcome = res.Outcome
				}
			}
			row[cfg.String()] = cell
		}
		m.Cells[a.Name] = row
	}
	return m
}

// Get returns the cell for (attack, mitigation label).
func (m *Matrix) Get(attack, mitigation string) (Cell, bool) {
	row, ok := m.Cells[attack]
	if !ok {
		return Cell{}, false
	}
	c, ok := row[mitigation]
	return c, ok
}

// Render formats the matrix as an aligned text table (the reproduction's
// T1/T3 artifacts).
func (m *Matrix) Render() string {
	var b strings.Builder
	w := 0
	for _, a := range m.Attacks {
		if len(a) > w {
			w = len(a)
		}
	}
	fmt.Fprintf(&b, "%-*s", w+2, "attack \\ defense")
	if w+2 < len("attack \\ defense")+2 {
		w = len("attack \\ defense")
	}
	b.Reset()
	fmt.Fprintf(&b, "%-*s", w+2, "attack")
	for _, mit := range m.Mitigations {
		fmt.Fprintf(&b, " | %-16s", mit)
	}
	b.WriteString("\n")
	for _, a := range m.Attacks {
		fmt.Fprintf(&b, "%-*s", w+2, a)
		for _, mit := range m.Mitigations {
			c := m.Cells[a][mit]
			val := c.Outcome.String()
			if c.Err != nil {
				val = "ERROR"
			}
			fmt.Fprintf(&b, " | %-16s", val)
		}
		b.WriteString("\n")
	}
	return b.String()
}
