package core

import (
	"strings"
	"testing"
)

// expectT3 pins the paper's Section IV-A comparison: every mechanism stops
// the in-process machine-code attacker, but only the Protected Module
// Architecture also stops kernel malware ("... or even by malware in the
// kernel"). The VM row reflects "no protection against machine code
// attackers ... at lower layers"; the SFI row the host/module asymmetry.
var expectT3 = map[string]map[string]bool{ // mechanism -> attacker -> stolen?
	"none":        {"in-process": true, "kernel": true},
	"bytecode-vm": {"in-process": false, "kernel": true},
	"sfi":         {"in-process": false, "kernel": true},
	"capability":  {"in-process": false, "kernel": true},
	"pma":         {"in-process": false, "kernel": false},
}

func TestIsolationMatrix(t *testing.T) {
	rows, err := RunIsolationMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("got %d cells, want 10", len(rows))
	}
	for _, r := range rows {
		want, ok := expectT3[r.Mechanism][r.Attacker]
		if !ok {
			t.Errorf("unexpected cell %s/%s", r.Mechanism, r.Attacker)
			continue
		}
		if r.SecretStolen != want {
			t.Errorf("%s vs %s attacker: stolen=%v, want %v (%s)",
				r.Mechanism, r.Attacker, r.SecretStolen, want, r.Note)
		}
	}
	out := RenderIsolation(rows)
	if !strings.Contains(out, "pma") || !strings.Contains(out, "STOLEN") {
		t.Fatalf("render:\n%s", out)
	}
}
