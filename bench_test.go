// Benchmarks regenerating every figure and table of the reproduction; see
// EXPERIMENTS.md for the mapping to the paper's claims. Simulated-platform
// costs are reported both as Go wall time (ns/op) and, where meaningful,
// as deterministic retired-instruction counts (instrs/op metric), which is
// the unit the overhead tables use.
package softsec

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"testing"

	"softsec/internal/asm"
	"softsec/internal/attack"
	"softsec/internal/bytecode"
	"softsec/internal/cfi"
	"softsec/internal/core"
	"softsec/internal/cpu"
	"softsec/internal/figures"
	"softsec/internal/fuzz"
	"softsec/internal/harness"
	"softsec/internal/kernel"
	"softsec/internal/mem"
	"softsec/internal/minc"
	"softsec/internal/pma"
	"softsec/internal/securecomp"
	"softsec/internal/sfi"
)

// kernelSource is the compute kernel for the overhead table (T2): a loop
// with one function call, one array write, and one array read per
// iteration, so canaries (per call) and bounds checks (per access) both
// show up.
const kernelSource = `
int step(int i) {
	char tmp[8];
	tmp[i % 8] = i;
	return tmp[i % 8];
}
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 500; i++) {
		acc = acc + step(i);
	}
	return acc & 0xFF;
}`

func buildKernelProc(b *testing.B, opt minc.Options, cfg kernel.Config) *kernel.Process {
	b.Helper()
	img, err := minc.Compile("kern", kernelSource, opt)
	if err != nil {
		b.Fatal(err)
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		b.Fatal(err)
	}
	p, err := kernel.Load(ld, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// runOverhead measures the kernel under one compiler/platform config,
// reporting retired instructions per run.
func runOverhead(b *testing.B, opt minc.Options, cfg kernel.Config) {
	b.Helper()
	var steps uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := buildKernelProc(b, opt, cfg)
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		steps = p.CPU.Steps
	}
	b.ReportMetric(float64(steps), "instrs/op")
}

// --- T2: run-time overhead of the countermeasures ----------------------

func BenchmarkOverheadBaseline(b *testing.B) {
	runOverhead(b, minc.Options{}, kernel.Config{DEP: true})
}

func BenchmarkOverheadCanary(b *testing.B) {
	runOverhead(b, minc.Options{Canary: true}, kernel.Config{DEP: true, CanarySeed: 7})
}

func BenchmarkOverheadChecked(b *testing.B) {
	runOverhead(b, minc.Options{BoundsCheck: true},
		kernel.Config{DEP: true, CheckedLibc: true})
}

func BenchmarkOverheadCanaryChecked(b *testing.B) {
	runOverhead(b, minc.Options{Canary: true, BoundsCheck: true},
		kernel.Config{DEP: true, CanarySeed: 7, CheckedLibc: true})
}

// BenchmarkOverheadASLR: ASLR costs at load time, not at run time — the
// instrs/op metric stays at baseline while load does extra work.
func BenchmarkOverheadASLR(b *testing.B) {
	runOverhead(b, minc.Options{}, kernel.Config{DEP: true, ASLR: true, ASLRSeed: 3})
}

// sfiKernel is the T2 row for software fault isolation: the same loop
// shape written in the SFI toolchain dialect, before and after masking.
const sfiKernel = `
	.text
	.global main
main:
	mov esi, 0
	mov ecx, 0
loop:
	cmp esi, 500
	jae done
	mov ebx, 0x00400000
	storew [ebx], esi
	loadw edx, [ebx]
	add ecx, edx
	add esi, 1
	jmp loop
done:
	mov ebx, ecx
	and ebx, 0xFF
	mov eax, 1
	int 0x80
`

func runSFIKernel(b *testing.B, masked bool) {
	b.Helper()
	src := sfiKernel
	sb := sfi.Sandbox{Base: 0x00400000, Size: 0x1000}
	if masked {
		var err error
		src, err = sfi.Rewrite(sfiKernel, sb)
		if err != nil {
			b.Fatal(err)
		}
	}
	var steps uint64
	for i := 0; i < b.N; i++ {
		img, err := asm.Assemble("plugin", src)
		if err != nil {
			b.Fatal(err)
		}
		ld, err := kernel.Link(kernel.Libc(), img)
		if err != nil {
			b.Fatal(err)
		}
		p, err := kernel.Load(ld, kernel.Config{DEP: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Mem.Map(0x00400000, 0x2000, mem.RW); err != nil {
			b.Fatal(err)
		}
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		steps = p.CPU.Steps
	}
	b.ReportMetric(float64(steps), "instrs/op")
}

func BenchmarkOverheadSFIOff(b *testing.B) { runSFIKernel(b, false) }
func BenchmarkOverheadSFIOn(b *testing.B)  { runSFIKernel(b, true) }

// Bytecode VM interpretation penalty (Section IV-A disadvantage 1): the
// sum kernel in bytecode vs natively compiled MinC.
func BenchmarkOverheadBytecodeVM(b *testing.B) {
	sum := &bytecode.Module{
		Name:   "k",
		Fields: map[string]uint32{},
		Methods: map[string]*bytecode.Method{
			"sum": {Name: "sum", Public: true, NArgs: 1, NLoc: 2,
				Code: []bytecode.Instr{
					{Op: bytecode.LoadLocal, A: 1},
					{Op: bytecode.LoadLocal, A: 0},
					{Op: bytecode.CmpLt},
					{Op: bytecode.Jz, A: 13},
					{Op: bytecode.LoadLocal, A: 2},
					{Op: bytecode.LoadLocal, A: 1},
					{Op: bytecode.Add},
					{Op: bytecode.StoreLocal, A: 2},
					{Op: bytecode.LoadLocal, A: 1},
					{Op: bytecode.Push, A: 1},
					{Op: bytecode.Add},
					{Op: bytecode.StoreLocal, A: 1},
					{Op: bytecode.Jmp, A: 0},
					{Op: bytecode.LoadLocal, A: 2},
					{Op: bytecode.Ret},
				}},
		},
	}
	var steps uint64
	for i := 0; i < b.N; i++ {
		vm := bytecode.NewVM(sum)
		v, err := vm.Invoke("k", "sum", 500)
		if err != nil || v != 124750 {
			b.Fatalf("%d %v", v, err)
		}
		steps = vm.Steps
	}
	b.ReportMetric(float64(steps), "bytecodes/op")
}

func BenchmarkOverheadNativeSum(b *testing.B) {
	runOverhead(b, minc.Options{}, kernel.Config{DEP: true})
}

// --- T4/F3: the cost of a protected-module entry ------------------------

const vaultSrc = `
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
int get_secret(int provided_pin) {
	if (tries_left > 0) {
		if (PIN == provided_pin) { tries_left = 3; return secret; }
		else { tries_left--; return 0; }
	}
	else return 0;
}`

// vaultCaller invokes get_secret 100 times. The loop counter lives in the
// frame, not a register: every register except EBP/ESP is caller-saved in
// this ABI (and hardened veneers additionally scrub scratch registers).
const vaultCaller = `
	.text
	.global main
main:
	push ebp
	mov ebp, esp
	sub esp, 8
	mov ecx, 0
	storew [ebp-4], ecx
callloop:
	loadw ecx, [ebp-4]
	cmp ecx, 100
	jae out
	mov eax, 1234
	storew [esp], eax
	call get_secret
	loadw ecx, [ebp-4]
	add ecx, 1
	storew [ebp-4], ecx
	jmp callloop
out:
	leave
	ret
`

func benchVaultCalls(b *testing.B, protect bool) {
	var modImg *asm.Image
	var err error
	if protect {
		modImg, err = securecomp.Harden("secretmod", vaultSrc,
			[]securecomp.Export{{Name: "get_secret", Args: 1}}, securecomp.Full())
	} else {
		modImg, err = minc.Compile("secretmod", vaultSrc, minc.Options{})
	}
	if err != nil {
		b.Fatal(err)
	}
	var steps uint64
	for i := 0; i < b.N; i++ {
		ld, err := kernel.Link(kernel.Libc(), modImg, asm.MustAssemble("m", vaultCaller))
		if err != nil {
			b.Fatal(err)
		}
		p, err := kernel.Load(ld, kernel.Config{DEP: true})
		if err != nil {
			b.Fatal(err)
		}
		if protect {
			if _, err := pma.Protect(p, "secretmod"); err != nil {
				b.Fatal(err)
			}
		}
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		steps = p.CPU.Steps
	}
	b.ReportMetric(float64(steps)/100, "instrs/call")
}

func BenchmarkPMACallPlain(b *testing.B)     { benchVaultCalls(b, false) }
func BenchmarkPMACallProtected(b *testing.B) { benchVaultCalls(b, true) }

// --- T5: sealing / attestation / state continuity throughput ------------

func BenchmarkSealUnseal(b *testing.B) {
	hw := pma.NewHardware(1)
	key := hw.ModuleKey(pma.CodeHash([]byte("module")))
	state := make([]byte, 256)
	b.SetBytes(int64(len(state)))
	for i := 0; i < b.N; i++ {
		blob, err := hw.Seal(key, state, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := hw.Unseal(key, blob, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContinuitySave(b *testing.B) {
	hw := pma.NewHardware(1)
	key := hw.ModuleKey(pma.CodeHash([]byte("module")))
	state := []byte("tries_left=3")
	stores := map[string]pma.Store{
		"plain":   &pma.PlainStore{Disk: pma.NewDisk(), ID: "v"},
		"sealed":  &pma.SealedStore{Disk: pma.NewDisk(), HW: hw, Key: key, ID: "v"},
		"memoir":  &pma.MemoirStore{Disk: pma.NewDisk(), HW: hw, Key: key, ID: "v"},
		"twoslot": &pma.TwoSlotStore{Disk: pma.NewDisk(), HW: hw, Key: key, ID: "v"},
	}
	for name, s := range stores {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.Save(state, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T1/T3: the matrices themselves --------------------------------------

func BenchmarkT1Cell(b *testing.B) {
	attacks := core.Attacks()
	a := attacks[0] // stack-smash-inject
	m := core.Mitigations{DEP: true}
	for i := 0; i < b.N; i++ {
		s, err := a.Scenario(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Run(s, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT1Matrix(b *testing.B) {
	attacks := core.Attacks()
	configs := core.StandardConfigs()
	for i := 0; i < b.N; i++ {
		m := core.RunMatrix(attacks, configs)
		if len(m.Attacks) != len(attacks) {
			b.Fatal("short matrix")
		}
	}
}

// BenchmarkTrialThroughput measures harness trials/sec at increasing
// worker-pool widths — the scaling trajectory, not just single-run
// latency. Each trial is a full T1 cell (compile, recon, link, load,
// attack, classify) with a per-trial ASLR layout.
func BenchmarkTrialThroughput(b *testing.B) {
	var spec core.AttackSpec
	for _, a := range core.Attacks() {
		if a.Name == "stack-smash-inject" {
			spec = a
		}
	}
	sc := core.TrialScenario(spec, core.Mitigations{DEP: true, ASLR: true}, true)
	widths := []int{1, 4, runtime.NumCPU()}
	sort.Ints(widths)
	widths = slices.Compact(widths)
	for _, jobs := range widths {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			rep := harness.Run([]harness.Scenario{sc},
				harness.Options{Trials: b.N, Jobs: jobs, BaseSeed: 1})
			if c := rep.Cells[0]; c.Errors > 0 {
				b.Fatalf("%d trial errors: %s", c.Errors, c.FirstError)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
		})
	}
}

// --- fuzzing subsystem: process resets and campaign throughput ----------

// quickstartVictim is the quickstart example's vulnerable server — the
// reference workload for the snapshot-vs-reload comparison.
const quickstartVictim = `
void main() {
	char buf[16];
	read(0, buf, 64); // spatial memory-safety vulnerability
	write(1, buf, 5);
}`

func quickstartLinked(b *testing.B) *kernel.Linked {
	b.Helper()
	img, err := minc.Compile("victim", quickstartVictim, minc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		b.Fatal(err)
	}
	return ld
}

// BenchmarkSnapshotRestore measures one process reset on the fuzzing
// fast path: run the quickstart victim to completion, then Restore to
// the post-Load snapshot. Compare with BenchmarkFullReload, the same
// reset done the pre-snapshot way — the ratio is the speedup that makes
// fuzz campaigns feasible.
func BenchmarkSnapshotRestore(b *testing.B) {
	ld := quickstartLinked(b)
	in := kernel.ScriptInput{[]byte("hello")}
	p, err := kernel.Load(ld, kernel.Config{DEP: true, Input: &in})
	if err != nil {
		b.Fatal(err)
	}
	snap := p.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		if err := p.Restore(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReload is the baseline reset: a fresh kernel.Load per
// execution (link amortized, as a harness would). It doubles as the
// lazy-cache-allocation guard: the quickstart victim runs front to back
// without re-executing a single address, so the decode and block caches
// must never allocate — the regression this pins cost a 30 → 55 µs/op
// slide when the caches were allocated eagerly.
func BenchmarkFullReload(b *testing.B) {
	ld := quickstartLinked(b)
	in := kernel.ScriptInput{[]byte("hello")}
	b.ReportAllocs()
	b.ResetTimer()
	var last *kernel.Process
	for i := 0; i < b.N; i++ {
		p, err := kernel.Load(ld, kernel.Config{DEP: true, Input: &in})
		if err != nil {
			b.Fatal(err)
		}
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		last = p
	}
	b.StopTimer()
	if dc, bc := last.CPU.CacheFootprint(); dc || bc {
		b.Fatalf("one-shot load allocated caches (decode=%v block=%v): lazy allocation regressed", dc, bc)
	}
}

// TestFullReloadStaysCacheFree is the benchmark guard as a plain test, so
// `go test` (not only -bench runs) pins the lazy allocation: a one-shot
// process allocates neither cache, while a looping process still earns
// both on its first re-executed address.
func TestFullReloadStaysCacheFree(t *testing.T) {
	img, err := minc.Compile("victim", quickstartVictim, minc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		t.Fatal(err)
	}
	p, err := kernel.Load(ld, kernel.Config{DEP: true, Input: &kernel.ScriptInput{[]byte("hello")}})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Run(); st != cpu.Exited {
		t.Fatalf("state %v fault %v", st, p.CPU.Fault())
	}
	if dc, bc := p.CPU.CacheFootprint(); dc || bc {
		t.Fatalf("one-shot run allocated caches (decode=%v block=%v)", dc, bc)
	}

	// Control: the looping compute kernel re-executes addresses and must
	// still invest in both caches.
	img, err = minc.Compile("kern", kernelSource, minc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld, err = kernel.Link(kernel.Libc(), img)
	if err != nil {
		t.Fatal(err)
	}
	p, err = kernel.Load(ld, kernel.Config{DEP: true})
	if err != nil {
		t.Fatal(err)
	}
	if st := p.Run(); st != cpu.Exited {
		t.Fatalf("state %v fault %v", st, p.CPU.Fault())
	}
	if dc, bc := p.CPU.CacheFootprint(); !dc || !bc {
		t.Fatalf("hot loop did not allocate caches (decode=%v block=%v)", dc, bc)
	}
}

// BenchmarkFuzzExecsPerSec measures end-to-end fuzzing throughput:
// mutate, reset, execute, classify, admit — the number every campaign
// cell's wall-clock hangs on.
func BenchmarkFuzzExecsPerSec(b *testing.B) {
	c, err := fuzz.New(fuzz.Config{
		Name: "echo", Source: quickstartVictim, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := c.Fuzz(b.N); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
}

// parserVictim is a well-behaved input checker: no overflow is
// reachable, so the campaign never veers into injected-code execution
// and every reset stays on the warm-cache fast path. This is the
// workload shape most fuzzing cells actually have — a parser probed for
// logic paths, not a victim mid-exploit — and the cell the trace tier's
// cross-reset cache retention is aimed at.
const parserVictim = `
void main() {
	char buf[8];
	int n;
	n = read(0, buf, 8);
	if (n > 1 && buf[0] == 'O' && buf[1] == 'K') {
		write(1, buf, 2);
	}
}`

// microVictim is the tightest realistic fuzz target: read a 4-byte
// magic, branch on it, exit. At ~40-60 interpreted steps per run, the
// campaign loop itself — reset, input delivery, trap handling, coverage
// bookkeeping, classification, mutation — dominates, so this cell
// measures the per-execution overhead floor of the whole fuzzing stack.
const microVictim = `
void main() {
	char buf[4];
	read(0, buf, 4);
	if (buf[0] == 'F') {
		write(1, buf, 1);
	}
}`

// BenchmarkFuzzExecsPerSecHot measures campaign throughput on warm-cache
// non-crashing cells: mutate, reset, execute, classify, admit, with
// decode/block/trace caches staying warm across every reset. The
// no-policy execs/sec numbers here are the headline fuzzing figures for
// BENCH_trace.json.
func BenchmarkFuzzExecsPerSecHot(b *testing.B) {
	for _, tc := range []struct {
		name, src string
	}{
		{"parser", parserVictim},
		{"micro", microVictim},
	} {
		b.Run(tc.name, func(b *testing.B) {
			c, err := fuzz.New(fuzz.Config{
				Name: tc.name, Source: tc.src, Seed: 1, DEP: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.Fuzz(b.N); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
		})
	}
}

// BenchmarkFuzzExecsPerSecCFI is the campaign-throughput view of CFI
// cost: the same mutate/reset/execute/classify loop with the label-table
// policy enforcing each precision — the exec/sec overhead column of the
// EXPERIMENTS attack×CFI table.
func BenchmarkFuzzExecsPerSecCFI(b *testing.B) {
	for _, prec := range []string{"coarse", "fine"} {
		b.Run(prec, func(b *testing.B) {
			c, err := fuzz.New(fuzz.Config{
				Name: "echo", Source: quickstartVictim, Seed: 1, CFI: prec,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if err := c.Fuzz(b.N); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "execs/sec")
		})
	}
}

func BenchmarkT3IsolationMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.RunIsolationMatrix(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F1-F4: figure regeneration ------------------------------------------

func BenchmarkF1Pipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF2F3Scraping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig2(); err != nil {
			b.Fatal(err)
		}
		if _, err := figures.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF4Exploit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- toolchain micro-benchmarks ------------------------------------------

func BenchmarkCompilerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := minc.Compile("kern", kernelSource, minc.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGadgetScan(b *testing.B) {
	libc := kernel.Libc()
	b.SetBytes(int64(len(libc.Text)))
	for i := 0; i < b.N; i++ {
		if gs := attack.FindGadgets(libc.Text, 0, 5); len(gs) == 0 {
			b.Fatal("no gadgets")
		}
	}
}

func BenchmarkInterpreterSpeed(b *testing.B) {
	// Raw simulator speed: simulated instructions per second on a tight
	// loop (contextualizes every other number).
	p := buildKernelProc(b, minc.Options{}, kernel.Config{DEP: true})
	if st := p.Run(); st != cpu.Exited {
		b.Fatal(st)
	}
	total := p.CPU.Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := buildKernelProc(b, minc.Options{}, kernel.Config{DEP: true})
		p.Run()
	}
	b.ReportMetric(float64(total), "sim-instrs/op")
}

// benchLoopCPU builds a bare machine spinning in a two-instruction loop —
// the purest view of per-step interpreter cost, no kernel or compiler in
// the timing.
func benchLoopCPU(b *testing.B) *cpu.CPU {
	b.Helper()
	img := asm.MustAssemble("loop", `
	.text
loop:
	add esi, 1
	jmp loop
`)
	m := mem.New()
	if err := m.Map(0x1000, mem.PageSize, mem.RX); err != nil {
		b.Fatal(err)
	}
	if err := m.LoadRaw(0x1000, img.Text); err != nil {
		b.Fatal(err)
	}
	c := cpu.New(m)
	c.IP = 0x1000
	return c
}

// BenchmarkDecodeCacheHit measures the steady-state per-instruction cost
// of the single-step reference engine when every fetch hits the decoded-
// instruction cache (the block engine is disabled for the measurement).
func BenchmarkDecodeCacheHit(b *testing.B) {
	c := benchLoopCPU(b)
	saved := cpu.UseBlockEngine
	cpu.UseBlockEngine = false
	defer func() { cpu.UseBlockEngine = saved }()
	b.ReportAllocs()
	b.ResetTimer()
	if st := c.Run(uint64(b.N)); st != cpu.StepLimit {
		b.Fatalf("state %v fault %v", st, c.Fault())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkBlockCacheHit is the block-engine counterpart: the same tight
// loop dispatched block-at-a-time from a warm block cache — the
// steady-state per-instruction cost of the fast path. The warm-up run is
// rewound with RestoreArch so the timed run starts Running with hot
// caches.
func BenchmarkBlockCacheHit(b *testing.B) {
	saved := cpu.UseTraceEngine
	cpu.UseTraceEngine = false // pin the measurement to the block tier
	defer func() { cpu.UseTraceEngine = saved }()
	c := benchLoopCPU(b)
	s := c.SaveArch()
	c.Run(64) // warm the hotness gate and the block cache
	c.RestoreArch(s)
	b.ReportAllocs()
	b.ResetTimer()
	if st := c.Run(uint64(b.N)); st != cpu.StepLimit {
		b.Fatalf("state %v fault %v", st, c.Fault())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// benchChainCPU builds a machine looping through a chain of nblocks
// two-instruction basic blocks, the last jumping back to the first. To
// the block engine this is the worst case the trace tier targets: every
// second instruction is a block boundary, so the per-dispatch overheads
// (cache probe, budget setup, policy lookup) are paid at half the
// instruction rate. To the trace tier the whole chain is one superblock
// that loops back on itself without leaving the dispatch.
func benchChainCPU(b *testing.B, nblocks int) *cpu.CPU {
	b.Helper()
	var src strings.Builder
	src.WriteString("\t.text\n")
	for i := 0; i < nblocks; i++ {
		fmt.Fprintf(&src, "b%d:\n\tadd esi, 1\n\tjmp b%d\n", i, (i+1)%nblocks)
	}
	img := asm.MustAssemble("chain", src.String())
	m := mem.New()
	if err := m.Map(0x1000, mem.PageSize, mem.RX); err != nil {
		b.Fatal(err)
	}
	if err := m.LoadRaw(0x1000, img.Text); err != nil {
		b.Fatal(err)
	}
	c := cpu.New(m)
	c.IP = 0x1000
	return c
}

// benchChainRun measures steady-state ns/instr on the block-chain
// workload under the current engine configuration.
func benchChainRun(b *testing.B, c *cpu.CPU) {
	b.Helper()
	s := c.SaveArch()
	c.Run(2048) // heat the blocks past the trace threshold and record
	c.RestoreArch(s)
	b.ReportAllocs()
	b.ResetTimer()
	if st := c.Run(uint64(b.N)); st != cpu.StepLimit {
		b.Fatalf("state %v fault %v", st, c.Fault())
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// BenchmarkTraceCacheHit is the trace-tier headline: the 8-block chain
// served from a warm trace cache as one self-looping superblock. Compare
// BenchmarkTraceVsBlockChain/block — the same workload with traces off —
// for the per-dispatch overhead the tier removes.
func BenchmarkTraceCacheHit(b *testing.B) {
	c := benchChainCPU(b, 8)
	ts := &cpu.TraceStats{}
	c.TraceStats = ts
	benchChainRun(b, c)
	if ts.Formed == 0 {
		b.Fatal("no trace formed: benchmark measured the block tier")
	}
}

// BenchmarkTraceVsBlockChain runs the identical chain workload under the
// block tier alone and under the trace tier: the ratio of the two MIPS
// numbers is the superblock speedup on dispatch-bound code.
func BenchmarkTraceVsBlockChain(b *testing.B) {
	b.Run("block", func(b *testing.B) {
		saved := cpu.UseTraceEngine
		cpu.UseTraceEngine = false
		defer func() { cpu.UseTraceEngine = saved }()
		benchChainRun(b, benchChainCPU(b, 8))
	})
	b.Run("trace", func(b *testing.B) {
		benchChainRun(b, benchChainCPU(b, 8))
	})
}

// BenchmarkBlockBuild measures block formation cost: every iteration
// builds main's entry block from scratch (decode per instruction, no
// cache). This is the price the hotness gate avoids paying for one-shot
// code.
func BenchmarkBlockBuild(b *testing.B) {
	p := buildKernelProc(b, minc.Options{}, kernel.Config{DEP: true})
	start, ok := p.SymbolAddr("main")
	if !ok {
		b.Fatal("no main symbol")
	}
	blk := p.CPU.BuildBlockAt(start)
	if blk == nil || blk.Len() < 2 {
		b.Fatalf("degenerate block at main: %+v", blk)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.CPU.BuildBlockAt(start) == nil {
			b.Fatal("build failed")
		}
	}
	b.ReportMetric(float64(blk.Len()), "instrs/block")
}

// BenchmarkBlockHistogram runs the compute kernel with block statistics
// installed and reports the block-length distribution and where block
// formation stopped — the shape data documenting why blocks end early
// (terminators vs page boundaries vs the length cap).
func BenchmarkBlockHistogram(b *testing.B) {
	var st cpu.BlockStats
	for i := 0; i < b.N; i++ {
		p := buildKernelProc(b, minc.Options{}, kernel.Config{DEP: true})
		st = cpu.BlockStats{}
		p.CPU.BlockStats = &st
		if s := p.Run(); s != cpu.Exited {
			b.Fatalf("state %v fault %v", s, p.CPU.Fault())
		}
	}
	b.ReportMetric(blockLenMean(&st), "mean-block-len")
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Builds+st.StepFalls), "hit-rate")
	b.Logf("block formation histogram:\n%s", renderBlockHist(&st))
}

// blockLenMean computes the mean built-block length.
func blockLenMean(st *cpu.BlockStats) float64 {
	var n, sum uint64
	for l, c := range st.LenHist {
		n += c
		sum += uint64(l) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// renderBlockHist renders the block-length histogram plus the stop-
// reason breakdown for b.Logf — the helper documenting where block
// formation stops early.
func renderBlockHist(st *cpu.BlockStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "builds=%d hits=%d dispatches=%d step-fallbacks=%d\n",
		st.Builds, st.Hits, st.Dispatches, st.StepFalls)
	var max uint64
	for _, c := range st.LenHist {
		if c > max {
			max = c
		}
	}
	for l, c := range st.LenHist {
		if c == 0 {
			continue
		}
		bar := int(40 * c / max)
		fmt.Fprintf(&sb, "len %2d  %6d  %s\n", l, c, strings.Repeat("#", bar))
	}
	for r := cpu.StopTerminator; r <= cpu.StopUndecodable; r++ {
		if n := st.StopHist[r]; n > 0 {
			fmt.Fprintf(&sb, "stop %-13s %6d\n", r, n)
		}
	}
	return sb.String()
}

// BenchmarkTelemetryOverhead pairs the tight loop with and without
// telemetry hooks: "off" is the shipping configuration and must stay
// within noise (<2%) of the no-hook engine numbers — a nil hook costs
// one untaken branch per site; "counters" adds the per-step stat
// structs; "profiled" adds PC sampling, which also forces the
// single-step reference engine (so compare it against
// BenchmarkDecodeCacheHit, not the block tier).
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, setup func(c *cpu.CPU)) {
		c := benchLoopCPU(b)
		setup(c)
		s := c.SaveArch()
		c.Run(4096) // warm every cache and hotness gate
		c.RestoreArch(s)
		b.ReportAllocs()
		b.ResetTimer()
		if st := c.Run(uint64(b.N)); st != cpu.StepLimit {
			b.Fatalf("state %v fault %v", st, c.Fault())
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "MIPS")
	}
	b.Run("off", func(b *testing.B) { run(b, func(*cpu.CPU) {}) })
	b.Run("counters", func(b *testing.B) {
		run(b, func(c *cpu.CPU) {
			c.DecodeStats = &cpu.DecodeStats{}
			c.FaultStats = &cpu.FaultStats{}
			c.BlockStats = &cpu.BlockStats{}
			c.TraceStats = &cpu.TraceStats{}
		})
	})
	b.Run("profiled", func(b *testing.B) {
		run(b, func(c *cpu.CPU) { c.Prof = cpu.NewProfiler(64) })
	})
}

// BenchmarkDecodeCacheMiss forces a full cache invalidation before every
// step (a PokeWord bumps the memory's code generation), so each fetch
// pays the byte-fetch + decode slow path.
func BenchmarkDecodeCacheMiss(b *testing.B) {
	c := benchLoopCPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Mem.PokeWord(0x1800, uint32(i)) // on the X page: invalidates
		if !c.Step() {
			b.Fatalf("fault %v", c.Fault())
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "MIPS")
}

// --- T4 ablation: the cost of each secure-compilation hardening step -----

func benchHardening(b *testing.B, opt securecomp.Options) {
	mod, err := securecomp.Harden("secretmod", vaultSrc,
		[]securecomp.Export{{Name: "get_secret", Args: 1}}, opt)
	if err != nil {
		b.Fatal(err)
	}
	var steps uint64
	for i := 0; i < b.N; i++ {
		ld, err := kernel.Link(kernel.Libc(), mod, asm.MustAssemble("m", vaultCaller))
		if err != nil {
			b.Fatal(err)
		}
		p, err := kernel.Load(ld, kernel.Config{DEP: true})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pma.Protect(p, "secretmod"); err != nil {
			b.Fatal(err)
		}
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		steps = p.CPU.Steps
	}
	b.ReportMetric(float64(steps)/100, "instrs/call")
}

func BenchmarkHardeningNaive(b *testing.B) {
	benchHardening(b, securecomp.Naive())
}

func BenchmarkHardeningGuardOnly(b *testing.B) {
	benchHardening(b, securecomp.Options{FnPtrGuard: true})
}

func BenchmarkHardeningVeneer(b *testing.B) {
	benchHardening(b, securecomp.Options{Veneer: true})
}

func BenchmarkHardeningVeneerPrivStack(b *testing.B) {
	benchHardening(b, securecomp.Options{Veneer: true, PrivateStack: true})
}

func BenchmarkHardeningFull(b *testing.B) {
	benchHardening(b, securecomp.Full())
}

// Shadow-stack (CFI) run-time cost on the call-heavy kernel.
func BenchmarkOverheadShadowStack(b *testing.B) {
	runOverhead(b, minc.Options{}, kernel.Config{DEP: true, ShadowStack: true})
}

// --- CFI: label-table enforcement cost --------------------------------

// benchInterpreterCFI is BenchmarkInterpreterSpeed with a CFI policy
// installed: per iteration it loads the compute kernel, recovers its CFG
// (the once-per-load static cost) and runs it under label-table checks.
// Under CFI the block engine refuses spans ending in indirect branches
// and RETs (they are stepped so the label check runs on the reference
// path), so this measures the end-to-end price of the acceptance bound:
// fine CFI must stay within 2× of the no-policy block engine.
func benchInterpreterCFI(b *testing.B, prec cfi.Precision) {
	b.Helper()
	run := func() *kernel.Process {
		p := buildKernelProc(b, minc.Options{}, kernel.Config{DEP: true})
		g, err := cfi.Recover(p)
		if err != nil {
			b.Fatal(err)
		}
		p.CPU.Policy = cfi.NewPolicy(g, prec)
		if st := p.Run(); st != cpu.Exited {
			b.Fatalf("state %v fault %v", st, p.CPU.Fault())
		}
		return p
	}
	total := run().CPU.Steps
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.ReportMetric(float64(total), "sim-instrs/op")
}

func BenchmarkInterpreterSpeedCFICoarse(b *testing.B) { benchInterpreterCFI(b, cfi.Coarse) }
func BenchmarkInterpreterSpeedCFIFine(b *testing.B)   { benchInterpreterCFI(b, cfi.Fine) }

// BenchmarkCFIRecover isolates the static cost: one CFG recovery over
// the loaded victim+libc image (linear-sweep decode, symbol seeding,
// address-taken scrape).
func BenchmarkCFIRecover(b *testing.B) {
	p := buildKernelProc(b, minc.Options{}, kernel.Config{DEP: true})
	base, end := p.TextBounds()
	b.SetBytes(int64(end - base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfi.Recover(p); err != nil {
			b.Fatal(err)
		}
	}
}
