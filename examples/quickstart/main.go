// Quickstart: compile a vulnerable C program for the simulated platform,
// exploit it like the paper's Section III, then watch a countermeasure
// catch the same exploit.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"softsec/internal/attack"
	"softsec/internal/cpu"
	"softsec/internal/kernel"
	"softsec/internal/minc"
)

// victim is the paper's Figure 1 server with the Section III-A bug: the
// read length (64) exceeds the buffer (16).
const victim = `
void main() {
	char buf[16];
	read(0, buf, 64); // spatial memory-safety vulnerability
	write(1, buf, 5);
}`

func run(opts minc.Options, cfg kernel.Config) *kernel.Process {
	img, err := minc.Compile("victim", victim, opts)
	if err != nil {
		log.Fatal(err)
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kernel.Load(ld, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p.Run()
	return p
}

func main() {
	fmt.Println("== 1. honest input ==")
	in := kernel.ScriptInput{[]byte("hello")}
	p := run(minc.Options{}, kernel.Config{DEP: true, Input: &in})
	fmt.Printf("   state=%v output=%q\n\n", p.CPU.StateOf(), p.Output.String())

	fmt.Println("== 2. return-to-libc exploit (DEP on, no canary) ==")
	// The attacker knows the binary: spawn_shell's nominal address is the
	// smashed return target; see internal/core for full recon.
	probe := run(minc.Options{}, kernel.Config{DEP: true})
	spawn, _ := probe.SymbolAddr("spawn_shell")
	payload := attack.NewSmash(16, spawn).Build()
	in2 := kernel.ScriptInput{payload}
	p2 := run(minc.Options{}, kernel.Config{DEP: true, Input: &in2})
	fmt.Printf("   state=%v exit=%d output=%q\n", p2.CPU.StateOf(), p2.CPU.ExitCode(), p2.Output.String())
	if p2.CPU.ExitCode() == attack.ShellExitCode {
		fmt.Println("   => attacker-controlled control flow reached libc's system() stand-in")
	}
	fmt.Println()

	fmt.Println("== 3. same exploit against a canary-hardened build ==")
	in3 := kernel.ScriptInput{payload}
	p3 := run(minc.Options{Canary: true}, kernel.Config{DEP: true, CanarySeed: 99, Input: &in3})
	fmt.Printf("   state=%v fault=%v\n", p3.CPU.StateOf(), p3.CPU.Fault())
	if p3.CPU.StateOf() == cpu.Faulted && p3.CPU.Fault().Kind == cpu.FaultFailFast {
		fmt.Println("   => the canary detected the smash before the corrupted return executed")
	}
	fmt.Println()

	fmt.Println("== 4. the checked dialect refuses the overflow outright ==")
	in4 := kernel.ScriptInput{payload}
	p4 := run(minc.Options{BoundsCheck: true},
		kernel.Config{DEP: true, CheckedLibc: true, Input: &in4})
	fmt.Printf("   state=%v fault=%v\n", p4.CPU.StateOf(), p4.CPU.Fault())
}
