// Ropgallery demonstrates the code-reuse attacks of Section III-B: gadget
// mining out of libc (including an unintended gadget hidden inside an
// immediate), a chained return-to-libc/ROP payload that defeats DEP, and
// the leak-assisted variant that additionally defeats ASLR and canaries.
//
// Run with: go run ./examples/ropgallery
package main

import (
	"fmt"
	"log"

	"softsec/internal/attack"
	"softsec/internal/core"
	"softsec/internal/kernel"
)

func main() {
	fmt.Println("== 1. mining gadgets from libc ==")
	libc := kernel.Libc()
	gs := attack.FindGadgets(libc.Text, kernel.NominalText, 5)
	fmt.Printf("   %d RET-terminated gadgets in %d bytes of libc text\n", len(gs), len(libc.Text))
	if g, ok := attack.FindPopChain(gs, 4); ok {
		fmt.Printf("   argument skipper: %v\n", g)
	}
	shown := 0
	for _, g := range gs {
		if regs, ok := g.PopRegs(); ok && len(regs) >= 1 && shown < 3 {
			fmt.Printf("   pop chain:        %v\n", g)
			shown++
		}
	}
	fmt.Println()

	attacks := map[string]core.AttackSpec{}
	for _, a := range core.Attacks() {
		attacks[a.Name] = a
	}

	show := func(name string, m core.Mitigations) {
		a := attacks[name]
		s, err := a.Scenario(m)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(s, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-24s vs %-17s -> %s\n", name, m, res.Outcome)
	}

	fmt.Println("== 2. DEP stops injection but not code reuse ==")
	show("stack-smash-inject", core.Mitigations{DEP: true})
	show("return-to-libc", core.Mitigations{DEP: true})
	show("rop-chain", core.Mitigations{DEP: true})
	fmt.Println()

	fmt.Println("== 3. ASLR breaks the hardcoded addresses ==")
	show("rop-chain", core.Mitigations{DEP: true, ASLR: true, ASLRSeed: 42})
	show("return-to-libc", core.Mitigations{DEP: true, ASLR: true, ASLRSeed: 42})
	fmt.Println()

	fmt.Println("== 4. ...until an information leak rebases the payload ==")
	show("leak-assisted-ret2libc", core.Mitigations{
		Canary: true, CanarySeed: 7, DEP: true, ASLR: true, ASLRSeed: 42,
	})
	fmt.Println("   => canary + DEP + ASLR all deployed, and the combination of an")
	fmt.Println("      over-read with a smash still wins (Strackx et al. [5]).")
}
