// Pinvault walks the paper's Section IV end to end: a bug-free PIN vault
// module is defenceless against an in-process machine-code attacker on a
// classic machine, protected by a Protected Module Architecture, still
// exploitable through its function-pointer interface when compiled
// naively, and finally safe under secure compilation.
//
// Run with: go run ./examples/pinvault
package main

import (
	"fmt"
	"log"

	"softsec/internal/asm"
	"softsec/internal/attack"
	"softsec/internal/kernel"
	"softsec/internal/minc"
	"softsec/internal/pma"
	"softsec/internal/securecomp"
)

const vaultFig2 = `
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
int get_secret(int provided_pin) {
	if (tries_left > 0) {
		if (PIN == provided_pin) { tries_left = 3; return secret; }
		else { tries_left--; return 0; }
	}
	else return 0;
}`

const vaultFig4 = `
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
int get_secret(int get_pin()) {
	if (tries_left > 0) {
		if (PIN == get_pin()) { tries_left = 3; return secret; }
		else { tries_left--; return 0; }
	}
	else return 0;
}`

func load(mod *asm.Image, client *asm.Image) *kernel.Process {
	ld, err := kernel.Link(kernel.Libc(), mod, client)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kernel.Load(ld, kernel.Config{DEP: true})
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func main() {
	fmt.Println("== 1. memory scraping on the classic machine (Figure 2) ==")
	mod, err := minc.Compile("secretmod", vaultFig2, minc.Options{})
	if err != nil {
		log.Fatal(err)
	}
	scraper, err := attack.ScraperModule(kernel.NominalData, kernel.NominalData+0x1000,
		[]byte{0xd2, 0x04, 0x00, 0x00}) // the PIN 1234, little-endian
	if err != nil {
		log.Fatal(err)
	}
	p := load(mod, scraper)
	st := p.Run()
	fmt.Printf("   scraper: state=%v exit=%d, exfiltrated % x\n", st, p.CPU.ExitCode(), p.Output.Bytes())
	fmt.Println("   => PIN and secret stolen without any bug in the module")
	fmt.Println()

	fmt.Println("== 2. the same scraper against a protected module (Figure 3) ==")
	hmod, err := securecomp.Harden("secretmod", vaultFig2,
		[]securecomp.Export{{Name: "get_secret", Args: 1}}, securecomp.Full())
	if err != nil {
		log.Fatal(err)
	}
	scraper2, _ := attack.ScraperModule(kernel.NominalData, kernel.NominalData+0x2000,
		[]byte{0xd2, 0x04, 0x00, 0x00})
	p2 := load(hmod, scraper2)
	if _, err := pma.Protect(p2, "secretmod"); err != nil {
		log.Fatal(err)
	}
	st2 := p2.Run()
	fmt.Printf("   scraper: state=%v fault=%v\n", st2, p2.CPU.Fault())
	fmt.Println()

	fmt.Println("== 3. the function-pointer exploit on the naive module (Figure 4) ==")
	naive, err := securecomp.Harden("secretmod", vaultFig4,
		[]securecomp.Export{{Name: "get_secret", Args: 1}}, securecomp.Naive())
	if err != nil {
		log.Fatal(err)
	}
	probe := load(naive, asm.MustAssemble("client", "\t.text\n\t.global main\nmain:\n\tret\n"))
	mb, _ := probe.Module("secretmod")
	text, _ := probe.Mem.PeekRaw(mb.TextStart, int(mb.TextEnd-mb.TextStart))
	resetAddr, ok := attack.FindTriesResetAddr(text, mb.TextStart)
	if !ok {
		log.Fatal("reset gadget not found")
	}
	fmt.Printf("   attacker found `tries_left = 3` at 0x%08x\n", resetAddr)
	naive2, _ := securecomp.Harden("secretmod", vaultFig4,
		[]securecomp.Export{{Name: "get_secret", Args: 1}}, securecomp.Naive())
	p3 := load(naive2, attack.Fig4ClientModule(resetAddr))
	if _, err := pma.Protect(p3, "secretmod"); err != nil {
		log.Fatal(err)
	}
	st3 := p3.Run()
	fmt.Printf("   exploit: state=%v exit=%d (the secret!) — PMA alone did not help\n",
		st3, p3.CPU.ExitCode())
	fmt.Println()

	fmt.Println("== 4. secure compilation stops it ==")
	full, _ := securecomp.Harden("secretmod", vaultFig4,
		[]securecomp.Export{{Name: "get_secret", Args: 1}}, securecomp.Full())
	p4 := load(full, attack.Fig4ClientModule(resetAddr))
	if _, err := pma.Protect(p4, "secretmod"); err != nil {
		log.Fatal(err)
	}
	st4 := p4.Run()
	fmt.Printf("   exploit: state=%v fault=%v\n", st4, p4.CPU.Fault())
	fmt.Println("   => the compiler's defensive check rejected the pointer into the module")
}
