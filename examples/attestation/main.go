// Attestation demonstrates the paper's Section IV-C: remote attestation of
// a protected module (the hardware key depends on the loaded code), sealed
// storage, the rollback attack on the PIN vault's tries counter, and the
// liveness problem of naive counter-based rollback protection.
//
// Run with: go run ./examples/attestation
package main

import (
	"errors"
	"fmt"
	"log"

	"softsec/internal/asm"
	"softsec/internal/kernel"
	"softsec/internal/pma"
	"softsec/internal/securecomp"
)

const vault = `
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
int get_secret(int provided_pin) {
	if (tries_left > 0) {
		if (PIN == provided_pin) { tries_left = 3; return secret; }
		else { tries_left--; return 0; }
	}
	else return 0;
}`

func main() {
	hw := pma.NewHardware(2026)

	fmt.Println("== 1. remote attestation ==")
	mod, err := securecomp.Harden("secretmod", vault,
		[]securecomp.Export{{Name: "get_secret", Args: 1}}, securecomp.Full())
	if err != nil {
		log.Fatal(err)
	}
	client := asm.MustAssemble("client", "\t.text\n\t.global main\nmain:\n\tmov eax, 0\n\tret\n")
	ld, err := kernel.Link(kernel.Libc(), mod, client)
	if err != nil {
		log.Fatal(err)
	}
	p, err := kernel.Load(ld, kernel.Config{DEP: true})
	if err != nil {
		log.Fatal(err)
	}
	pol, err := pma.Protect(p, "secretmod")
	if err != nil {
		log.Fatal(err)
	}
	m := pol.Modules()[0]
	code, _ := p.Mem.PeekRaw(m.CodeStart, int(m.CodeEnd-m.CodeStart))
	providerKey := hw.ModuleKey(pma.CodeHash(code)) // provisioned out of band

	nonce := []byte("verifier-nonce-0001")
	report := hw.Attest(p, m, nonce)
	fmt.Printf("   genuine module attests: %v\n", pma.VerifyAttestation(providerKey, nonce, report))

	// A malicious OS patches the module (e.g. to always return the
	// secret) before loading: the derived key changes, attestation fails.
	p.Mem.PokeWord(m.CodeStart+8, 0x90909090)
	bad := hw.Attest(p, m, nonce)
	fmt.Printf("   tampered module attests: %v\n", pma.VerifyAttestation(providerKey, nonce, bad))
	fmt.Println()

	fmt.Println("== 2. sealed storage and the rollback attack ==")
	disk := pma.NewDisk()
	key := providerKey
	sealed := &pma.SealedStore{Disk: disk, HW: hw, Key: key, ID: "vault"}
	state3 := []byte("tries_left=3")
	state1 := []byte("tries_left=1")
	if err := sealed.Save(state3, nil); err != nil {
		log.Fatal(err)
	}
	snapshot := disk.Snapshot() // the OS keeps a copy of the fresh state
	if err := sealed.Save(state1, nil); err != nil {
		log.Fatal(err)
	}
	disk.Restore(snapshot) // ... and rolls back after two failed PINs
	got, err := sealed.Recover()
	fmt.Printf("   sealed-only store after rollback: %q (err=%v)\n", got, err)
	fmt.Println("   => sealing gives confidentiality+integrity, NOT freshness")
	fmt.Println()

	fmt.Println("== 3. monotonic counters detect rollback ==")
	memoir := &pma.MemoirStore{Disk: pma.NewDisk(), HW: hw, Key: key, ID: "vault-m"}
	if err := memoir.Save(state3, nil); err != nil {
		log.Fatal(err)
	}
	snap2 := memoir.Disk.Snapshot()
	if err := memoir.Save(state1, nil); err != nil {
		log.Fatal(err)
	}
	memoir.Disk.Restore(snap2)
	_, err = memoir.Recover()
	fmt.Printf("   memoir store after rollback: err=%v\n", err)
	fmt.Println()

	fmt.Println("== 4. ...but naive counters can brick the module on a crash ==")
	memoir2 := &pma.MemoirStore{Disk: pma.NewDisk(), HW: hw, Key: key, ID: "vault-c"}
	if err := memoir2.Save(state3, nil); err != nil {
		log.Fatal(err)
	}
	inj := &pma.FaultInjector{CrashAfter: 1} // crash between increment and write
	err = memoir2.Save(state1, inj)
	fmt.Printf("   crash injected during save: %v\n", err)
	_, err = memoir2.Recover()
	fmt.Printf("   recovery after crash: err=%v\n", err)
	fmt.Println()

	fmt.Println("== 5. the two-slot protocol gives both freshness and liveness ==")
	two := &pma.TwoSlotStore{Disk: pma.NewDisk(), HW: hw, Key: key, ID: "vault-2"}
	if err := two.Save(state3, nil); err != nil {
		log.Fatal(err)
	}
	inj2 := &pma.FaultInjector{CrashAfter: 1}
	if err := two.Save(state1, inj2); !errors.Is(err, pma.ErrCrash) {
		log.Fatalf("expected crash, got %v", err)
	}
	got, err = two.Recover()
	fmt.Printf("   recovery after the same crash: %q (err=%v)\n", got, err)
	snap3 := two.Disk.Snapshot()
	if err := two.Save([]byte("tries_left=0"), nil); err != nil {
		log.Fatal(err)
	}
	two.Disk.Restore(snap3)
	_, err = two.Recover()
	fmt.Printf("   rollback against two-slot: err=%v\n", err)
}
