package main

// -sweep mode: harness trial throughput over the attack grids, the
// headline number of the build-cache + warm-worker layer. Unlike the
// trace-tier cells (ns/instr of the execution engine), these cells
// measure the full per-trial pipeline — recon, build, load, run,
// classify — which is exactly what content-keyed build caching and
// snapshot-warmed workers amortize. The snapshot records, per grid, the
// trials/sec plus the build-cache and warm/cold counters that prove the
// number was produced by the cached pipeline, and freezes the measured
// speedup of the cached t1 grid over the same grid with the cache layer
// disabled and warm reuse stripped (the pre-cache pipeline).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"softsec/internal/buildcache"
	"softsec/internal/core"
	"softsec/internal/harness"
	"softsec/internal/telemetry"
)

// decodeStrict unmarshals with unknown fields rejected — the shared
// shape check of every snapshot validator.
func decodeStrict(b []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func joinErrs(errs []string) string { return strings.Join(errs, "\n  ") }

// sweepGrids are the groups a sweep snapshot measures, in order.
var sweepGrids = []string{"t1", "cfi", "t1p"}

// SweepSnapshot is the on-disk format of -sweep mode (BENCH_sweep.json).
type SweepSnapshot struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Quick  bool   `json:"quick,omitempty"`
	Counts struct {
		// Trials per scenario and worker-pool width of every grid run.
		Trials int `json:"trials"`
		Jobs   int `json:"jobs"`
	} `json:"counts"`
	// Grids holds one entry per measured group (t1, cfi, t1p), plus
	// "t1-uncached": the t1 grid re-run with the build cache disabled
	// and warm reuse stripped — the pre-cache pipeline the speedup is
	// measured against.
	Grids map[string]SweepGrid `json:"grids"`
	// CacheSpeedupT1 = t1 trials/sec over t1-uncached trials/sec.
	CacheSpeedupT1 float64 `json:"cache_speedup_t1"`
}

// SweepGrid is one grid's throughput cell.
type SweepGrid struct {
	Scenarios      int     `json:"scenarios"`
	TrialsPerSec   float64 `json:"trials_per_sec"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	WarmRestores   int     `json:"warm_restores"`
	ColdLoads      int     `json:"cold_loads"`
}

// measureSweep times every grid with identical budgets and the t1
// uncached reference.
func measureSweep(quick bool, reg *telemetry.Registry) (*SweepSnapshot, error) {
	s := &SweepSnapshot{Schema: schemaVersion, Tool: "benchsnap-sweep", Quick: quick}
	// Enough trials per cell that the one-time toolchain misses amortize
	// the way they do in a real sweep (the motivating workloads run
	// hundreds of trials per cell).
	s.Counts.Trials = 64
	if quick {
		s.Counts.Trials = 4
	}
	s.Counts.Jobs = runtime.NumCPU()
	s.Grids = map[string]SweepGrid{}

	catalog := harness.NewRegistry()
	if err := core.RegisterScenarios(catalog); err != nil {
		return nil, err
	}
	for _, g := range sweepGrids {
		scs := catalog.Group(g)
		if len(scs) == 0 {
			return nil, fmt.Errorf("grid %s: no scenarios", g)
		}
		cell, err := timeSweep(scs, s.Counts.Trials, s.Counts.Jobs)
		if err != nil {
			return nil, fmt.Errorf("grid %s: %w", g, err)
		}
		s.Grids[g] = cell
		reg.SetWall("trials_per_sec."+g, cell.TrialsPerSec)
	}

	// The uncached reference: same t1 budgets through the pre-cache
	// pipeline (cache layer off, every trial a cold load).
	prev := buildcache.SetEnabled(false)
	uncached, err := timeSweep(stripWarm(catalog.Group("t1")), s.Counts.Trials, s.Counts.Jobs)
	buildcache.SetEnabled(prev)
	if err != nil {
		return nil, fmt.Errorf("grid t1-uncached: %w", err)
	}
	s.Grids["t1-uncached"] = uncached
	reg.SetWall("trials_per_sec.t1-uncached", uncached.TrialsPerSec)
	s.CacheSpeedupT1 = s.Grids["t1"].TrialsPerSec / uncached.TrialsPerSec
	reg.SetWall("cache_speedup.t1", s.CacheSpeedupT1)
	return s, nil
}

// timeSweep runs one grid and reads the run's cache and warm counters
// (harness.Run resets the build caches at start, so TotalStats after
// the run describes exactly this run).
func timeSweep(scs []harness.Scenario, trials, jobs int) (SweepGrid, error) {
	start := time.Now()
	rep := harness.Run(scs, harness.Options{Trials: trials, Jobs: jobs, BaseSeed: 1})
	elapsed := time.Since(start).Seconds()
	for _, c := range rep.Cells {
		if c.Errors > 0 {
			return SweepGrid{}, fmt.Errorf("cell %s: %d trial errors (%s)", c.Scenario, c.Errors, c.FirstError)
		}
	}
	st := buildcache.TotalStats()
	return SweepGrid{
		Scenarios:      len(scs),
		TrialsPerSec:   float64(len(scs)*trials) / elapsed,
		CacheHits:      st.Hits,
		CacheMisses:    st.Misses,
		CacheEvictions: st.Evictions,
		WarmRestores:   rep.WarmRestores,
		ColdLoads:      rep.ColdLoads,
	}, nil
}

// stripWarm copies the scenarios without their warm hooks, forcing the
// cold per-trial path.
func stripWarm(scs []harness.Scenario) []harness.Scenario {
	out := append([]harness.Scenario(nil), scs...)
	for i := range out {
		out[i].Warm = nil
	}
	return out
}

// validateSweep checks a BENCH_sweep.json snapshot: shape, positive
// finite throughput per grid, cache counters consistent with each
// grid's pipeline (active caching on the measured grids, none on the
// uncached reference), and — under -strict — the acceptance floor the
// build-cache layer ships with: the cached t1 grid at ≥5× the uncached
// pipeline. The floor is a ratio of two numbers measured on the same
// machine in the same run, so it holds anywhere.
func validateSweep(path string, b []byte, strict bool) error {
	var s SweepSnapshot
	if err := decodeStrict(b, &s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	if s.Schema != schemaVersion {
		fail("schema %d, want %d", s.Schema, schemaVersion)
	}
	if s.Tool != "benchsnap-sweep" {
		fail("tool %q, want benchsnap-sweep", s.Tool)
	}
	if s.Counts.Trials <= 0 || s.Counts.Jobs <= 0 {
		fail("non-positive counts: %+v", s.Counts)
	}
	for _, g := range sweepGrids {
		cell, ok := s.Grids[g]
		if !ok {
			fail("grids: missing %q", g)
			continue
		}
		if cell.Scenarios <= 0 {
			fail("grids[%q].scenarios = %d, want positive", g, cell.Scenarios)
		}
		if !(cell.TrialsPerSec > 0) || math.IsInf(cell.TrialsPerSec, 0) {
			fail("grids[%q].trials_per_sec = %v, want positive finite", g, cell.TrialsPerSec)
		}
		if cell.CacheMisses == 0 || cell.CacheHits == 0 {
			fail("grids[%q]: cache hits=%d misses=%d, want both non-zero (was the cache layer on?)", g, cell.CacheHits, cell.CacheMisses)
		}
		if cell.WarmRestores == 0 {
			fail("grids[%q].warm_restores = 0, want warm-served trials", g)
		}
	}
	un, ok := s.Grids["t1-uncached"]
	if !ok {
		fail("grids: missing %q", "t1-uncached")
	} else {
		if !(un.TrialsPerSec > 0) || math.IsInf(un.TrialsPerSec, 0) {
			fail("grids[%q].trials_per_sec = %v, want positive finite", "t1-uncached", un.TrialsPerSec)
		}
		if un.CacheHits != 0 || un.CacheMisses != 0 || un.WarmRestores != 0 {
			fail("t1-uncached ran with caching active (hits=%d misses=%d warm=%d)", un.CacheHits, un.CacheMisses, un.WarmRestores)
		}
	}
	if t1, ok := s.Grids["t1"]; ok && un.TrialsPerSec > 0 {
		ratio := t1.TrialsPerSec / un.TrialsPerSec
		if math.Abs(ratio-s.CacheSpeedupT1) > 1e-6*ratio {
			fail("cache_speedup_t1 %.4f inconsistent with grids ratio %.4f", s.CacheSpeedupT1, ratio)
		}
	}
	if strict {
		if s.CacheSpeedupT1 < 5 {
			fail("cache_speedup_t1 %.2f, want >= 5x over the uncached pipeline", s.CacheSpeedupT1)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s:\n  %s", path, joinErrs(errs))
	}
	return nil
}
