package main

// -sweep mode: harness trial throughput over the attack grids, the
// headline number of the build-cache + warm-worker layer. Unlike the
// trace-tier cells (ns/instr of the execution engine), these cells
// measure the full per-trial pipeline — recon, build, load, run,
// classify — which is exactly what content-keyed build caching and
// snapshot-warmed workers amortize. The snapshot records, per grid, the
// trials/sec plus the build-cache and warm/cold counters that prove the
// number was produced by the cached pipeline, and freezes the measured
// speedup of the cached t1 grid over the same grid with the cache layer
// disabled and warm reuse stripped (the pre-cache pipeline). The
// on-disk schema and validator live in internal/runlog/benchfmt.

import (
	"fmt"
	"runtime"
	"time"

	"softsec/internal/buildcache"
	"softsec/internal/core"
	"softsec/internal/harness"
	"softsec/internal/runlog/benchfmt"
	"softsec/internal/telemetry"
)

// measureSweep times every grid with identical budgets and the t1
// uncached reference.
func measureSweep(quick bool, reg *telemetry.Registry) (*benchfmt.SweepSnapshot, error) {
	s := &benchfmt.SweepSnapshot{Schema: benchfmt.SchemaVersion, Tool: benchfmt.ToolSweep, Quick: quick}
	// Enough trials per cell that the one-time toolchain misses amortize
	// the way they do in a real sweep (the motivating workloads run
	// hundreds of trials per cell).
	s.Counts.Trials = 64
	if quick {
		s.Counts.Trials = 4
	}
	s.Counts.Jobs = runtime.NumCPU()
	s.Grids = map[string]benchfmt.SweepGrid{}

	catalog := harness.NewRegistry()
	if err := core.RegisterScenarios(catalog); err != nil {
		return nil, err
	}
	for _, g := range benchfmt.SweepGrids {
		scs := catalog.Group(g)
		if len(scs) == 0 {
			return nil, fmt.Errorf("grid %s: no scenarios", g)
		}
		cell, err := timeSweep(scs, s.Counts.Trials, s.Counts.Jobs)
		if err != nil {
			return nil, fmt.Errorf("grid %s: %w", g, err)
		}
		s.Grids[g] = cell
		reg.SetWall("trials_per_sec."+g, cell.TrialsPerSec)
	}

	// The uncached reference: same t1 budgets through the pre-cache
	// pipeline (cache layer off, every trial a cold load).
	prev := buildcache.SetEnabled(false)
	uncached, err := timeSweep(stripWarm(catalog.Group("t1")), s.Counts.Trials, s.Counts.Jobs)
	buildcache.SetEnabled(prev)
	if err != nil {
		return nil, fmt.Errorf("grid t1-uncached: %w", err)
	}
	s.Grids["t1-uncached"] = uncached
	reg.SetWall("trials_per_sec.t1-uncached", uncached.TrialsPerSec)
	s.CacheSpeedupT1 = s.Grids["t1"].TrialsPerSec / uncached.TrialsPerSec
	reg.SetWall("cache_speedup.t1", s.CacheSpeedupT1)
	return s, nil
}

// timeSweep runs one grid and reads the run's cache and warm counters
// (harness.Run resets the build caches at start, so TotalStats after
// the run describes exactly this run).
func timeSweep(scs []harness.Scenario, trials, jobs int) (benchfmt.SweepGrid, error) {
	start := time.Now()
	rep := harness.Run(scs, harness.Options{Trials: trials, Jobs: jobs, BaseSeed: 1})
	elapsed := time.Since(start).Seconds()
	for _, c := range rep.Cells {
		if c.Errors > 0 {
			return benchfmt.SweepGrid{}, fmt.Errorf("cell %s: %d trial errors (%s)", c.Scenario, c.Errors, c.FirstError)
		}
	}
	st := buildcache.TotalStats()
	return benchfmt.SweepGrid{
		Scenarios:      len(scs),
		TrialsPerSec:   float64(len(scs)*trials) / elapsed,
		CacheHits:      st.Hits,
		CacheMisses:    st.Misses,
		CacheEvictions: st.Evictions,
		WarmRestores:   rep.WarmRestores,
		ColdLoads:      rep.ColdLoads,
	}, nil
}

// stripWarm copies the scenarios without their warm hooks, forcing the
// cold per-trial path.
func stripWarm(scs []harness.Scenario) []harness.Scenario {
	out := append([]harness.Scenario(nil), scs...)
	for i := range out {
		out[i].Warm = nil
	}
	return out
}
