// Command benchsnap measures the simulator's headline performance
// numbers with fixed work counts and writes them as a machine-readable
// snapshot (BENCH_trace.json). Fixed counts — not testing.B calibration
// — keep the fuzzing throughput cells comparable across runs: a
// campaign's execs/sec drifts with the execution budget, so every
// snapshot runs the same budget.
//
//	benchsnap                        # measure, write BENCH_trace.json
//	benchsnap -quick -o /tmp/s.json  # reduced counts (smoke/CI)
//	benchsnap -validate              # check the committed snapshot
//	benchsnap -validate -f /tmp/s.json -strict=false
//	benchsnap -profiles              # per-layout-profile fuzz throughput
//	benchsnap -profiles -validate    # check BENCH_profiles.json
//	benchsnap -sweep                 # harness trials/sec over the attack grids
//	benchsnap -sweep -validate       # check BENCH_sweep.json
//	benchsnap -metrics BENCH_metrics.json   # also freeze the registry
//	benchsnap -runlog runs           # also append a record to the run ledger
//
// The snapshot schemas and validators live in internal/runlog/benchfmt
// — one package owns the on-disk types of every BENCH_*.json kind, and
// -validate dispatches on the file's "tool" tag, so it checks any of
// them (plus telemetry-metrics files and run-ledger records).
//
// -sweep measures full-pipeline trial throughput (recon, build, load,
// run, classify) over the t1, cfi and t1p grids and writes
// BENCH_sweep.json — the headline cells of the content-keyed build
// cache and the snapshot-warmed trial workers. The snapshot records
// each grid's cache and warm/cold counters and the measured speedup of
// the cached t1 grid over the same grid with caching disabled; -strict
// validation enforces the ≥5× floor.
//
// -metrics additionally freezes the measurement run's telemetry
// registry (internal/telemetry) as a metrics file: the deterministic
// engine counters of the instrumented cells plus every headline timing
// under the explicitly non-deterministic "wall" section.
//
// -runlog appends the measurement as a bench-kind record to a run
// ledger (internal/runlog): every headline number in the record's wall
// section, the registry counters alongside, so rundiff can compare two
// bench runs with regression floors (e.g. -floor trace.execs_per_sec.fuzz_micro=0.8).
//
// -profiles measures the echo-victim fuzz campaign once per machine
// layout profile (internal/layout) and writes BENCH_profiles.json — the
// cross-profile throughput comparison that shows layout parameterization
// stays off the hot path.
//
// -validate re-reads a snapshot and checks it without re-measuring:
// schema and shape, positive finite metrics, trace-tier sanity (a trace
// actually formed and beats the block tier on the chain workload), and
// — under -strict, for the committed snapshot — the acceptance floors
// (a ≥2× superblock speedup, a no-policy fuzz cell at ≥1M execs/sec,
// trace chain ≤ 5.9 ns/instr). Quick snapshots regenerated on slow or
// loaded CI machines validate with -strict=false, which keeps only the
// sanity checks.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"softsec/internal/asm"
	"softsec/internal/cpu"
	"softsec/internal/fuzz"
	"softsec/internal/kernel"
	"softsec/internal/layout"
	"softsec/internal/mem"
	"softsec/internal/minc"
	"softsec/internal/runlog"
	"softsec/internal/runlog/benchfmt"
	"softsec/internal/telemetry"
)

func main() {
	var (
		out      = flag.String("o", "", "snapshot file to write (default BENCH_trace.json, BENCH_profiles.json with -profiles)")
		validate = flag.Bool("validate", false, "validate a snapshot instead of measuring")
		file     = flag.String("f", "", "snapshot file to validate (default like -o)")
		quick    = flag.Bool("quick", false, "reduced work counts (smoke runs)")
		strict   = flag.Bool("strict", true, "with -validate: enforce the absolute acceptance floors")
		profiles = flag.Bool("profiles", false, "measure fuzz throughput per machine layout profile instead of the trace-tier cells")
		sweep    = flag.Bool("sweep", false, "measure harness trial throughput over the attack grids (build cache + warm workers)")
		metrics  = flag.String("metrics", "", "also freeze the measurement's telemetry registry as a metrics file")
		runDir   = flag.String("runlog", "", "also append the measurement as a bench record to this run-ledger directory (compare runs with rundiff)")
	)
	flag.Parse()
	mode := "trace"
	def := "BENCH_trace.json"
	if *profiles {
		mode, def = "profiles", "BENCH_profiles.json"
	}
	if *sweep {
		mode, def = "sweep", "BENCH_sweep.json"
	}
	if *out == "" {
		*out = def
	}
	if *file == "" {
		*file = def
	}

	if *validate {
		if err := validateFile(*file, *strict); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *file)
		return
	}

	var snap any
	var err error
	reg := telemetry.NewRegistry()
	switch {
	case *profiles:
		snap, err = measureProfiles(*quick, reg)
	case *sweep:
		snap, err = measureSweep(*quick, reg)
	default:
		snap, err = measure(*quick, reg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	// The machine fingerprint rides the metrics wall section (and the
	// run record), same as harness sweeps: a frozen registry names the
	// machine that produced its numbers.
	env := runlog.CaptureEnv(runtime.NumCPU())
	env.PublishWall(reg)
	b, err := benchfmt.Marshal(snap)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if *metrics != "" {
		mb, err := reg.MetricsJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metrics, mb, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metrics)
	}
	if *runDir != "" {
		if err := appendRunLog(*runDir, mode, *quick, env, reg); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
	}
	switch s := snap.(type) {
	case *benchfmt.Snapshot:
		for k, v := range s.NsPerInstr {
			fmt.Printf("  %-18s %8.2f ns/instr\n", k, v)
		}
		for k, v := range s.ExecsPerSec {
			fmt.Printf("  %-18s %8.0f execs/sec\n", k, v)
		}
		for k, v := range s.NsPerOp {
			fmt.Printf("  %-18s %8.1f ns/op\n", k, v)
		}
	case *benchfmt.ProfilesSnapshot:
		for _, name := range layout.Names() {
			fmt.Printf("  %-18s %8.0f execs/sec\n", name, s.ExecsPerSec[name])
		}
	case *benchfmt.SweepSnapshot:
		for _, g := range append(append([]string(nil), benchfmt.SweepGrids...), "t1-uncached") {
			c := s.Grids[g]
			fmt.Printf("  %-12s %8.0f trials/sec  (hits=%d misses=%d warm=%d cold=%d)\n",
				g, c.TrialsPerSec, c.CacheHits, c.CacheMisses, c.WarmRestores, c.ColdLoads)
		}
		fmt.Printf("  %-12s %8.2fx\n", "speedup", s.CacheSpeedupT1)
	}
}

// validateFile dispatches a snapshot file to its kind's validator by
// tool tag: the benchfmt kinds plus run-ledger records.
func validateFile(path string, strict bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	err = benchfmt.Validate(b, strict)
	if errors.Is(err, benchfmt.ErrUnknownTool) {
		if tool, perr := benchfmt.PeekTool(b); perr == nil && tool == runlog.Tool {
			err = runlog.Validate(b)
		}
	}
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// appendRunLog appends the measurement to a run ledger as a bench-kind
// record: every headline wall number (the registry's wall section) plus
// the deterministic counters, so rundiff can gate on throughput ratios.
func appendRunLog(dir, mode string, quick bool, env runlog.Env, reg *telemetry.Registry) error {
	st, err := runlog.Open(dir)
	if err != nil {
		return err
	}
	f := reg.File()
	wall := map[string]float64{}
	for k, v := range f.Wall {
		// Headline timings only — the env.* fingerprint entries already
		// live in Record.Env.
		if fv, ok := v.(float64); ok && !strings.HasPrefix(k, "env.") {
			wall[mode+"."+k] = fv
		}
	}
	cfg := runlog.Config{Tool: "benchsnap", Kind: runlog.KindBench, Group: mode}
	if quick {
		cfg.Profile = "quick" // quick budgets are a different experiment
	}
	e, err := st.Append(&runlog.Record{
		Config:  cfg,
		Env:     env,
		Metrics: f,
		Wall:    wall,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "runlog: appended run %d (%s) to %s\n", e.Seq, e.ID, dir)
	return nil
}

// --- measurement --------------------------------------------------------

func measure(quick bool, reg *telemetry.Registry) (*benchfmt.Snapshot, error) {
	s := &benchfmt.Snapshot{Schema: benchfmt.SchemaVersion, Tool: benchfmt.ToolTrace, Quick: quick}
	s.Counts.ChainInstrs = 8 << 20
	s.Counts.FuzzExecs = 1 << 20
	s.Counts.RestoreCycles = 200000
	if quick {
		s.Counts.ChainInstrs = 1 << 18
		s.Counts.FuzzExecs = 1 << 14
		s.Counts.RestoreCycles = 4096
	}

	savedB, savedT := cpu.UseBlockEngine, cpu.UseTraceEngine
	defer func() { cpu.UseBlockEngine, cpu.UseTraceEngine = savedB, savedT }()

	var trace cpu.TraceStats
	s.NsPerInstr = map[string]float64{}
	for _, cell := range []struct {
		name         string
		block, trace bool
		nblocks      int
		ts           *cpu.TraceStats
	}{
		{"step_loop", false, false, 1, nil},
		{"block_loop", true, false, 1, nil},
		{"block_chain8", true, false, 8, nil},
		{"trace_chain8", true, true, 8, &trace},
	} {
		cpu.UseBlockEngine, cpu.UseTraceEngine = cell.block, cell.trace
		ns, err := timeChain(cell.nblocks, s.Counts.ChainInstrs, cell.ts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cell.name, err)
		}
		s.NsPerInstr[cell.name] = ns
		reg.SetWall("ns_per_instr."+cell.name, ns)
	}
	if trace.Formed == 0 {
		return nil, fmt.Errorf("trace_chain8: no trace formed (measured the block tier)")
	}
	s.Trace = benchfmt.TraceSummary{
		Formed: trace.Formed, Dispatches: trace.Dispatches,
		Completions: trace.Completions, LoopBacks: trace.LoopBacks,
		SideExits: trace.SideExits, StaleExits: trace.StaleExits,
		AvgLen: trace.AvgLen(), SideExitRate: trace.SideExitRate(),
		LenHist: map[string]uint64{},
	}
	for l, n := range trace.LenHist {
		if n != 0 {
			s.Trace.LenHist[fmt.Sprintf("%02d", l)] = n
		}
	}
	// Freeze the instrumented cell's engine counters into the registry —
	// the deterministic side of the snapshot, same namespace the harness
	// -metrics flag writes.
	tsnap := telemetry.NewSnap()
	tsnap.Scenario = "benchsnap/trace_chain8"
	trace.Publish(tsnap)
	reg.AddSnap(tsnap)

	// Fuzz campaign throughput under the production (trace) tier.
	cpu.UseBlockEngine, cpu.UseTraceEngine = true, true
	s.ExecsPerSec = map[string]float64{}
	for _, cell := range []struct {
		name string
		cfg  fuzz.Config
	}{
		{"fuzz_micro", fuzz.Config{Name: "micro", Source: microVictim, Seed: 1, DEP: true}},
		{"fuzz_parser", fuzz.Config{Name: "parser", Source: parserVictim, Seed: 1, DEP: true}},
		{"fuzz_cfi_coarse", fuzz.Config{Name: "echo", Source: echoVictim, Seed: 1, CFI: "coarse"}},
		{"fuzz_cfi_fine", fuzz.Config{Name: "echo", Source: echoVictim, Seed: 1, CFI: "fine"}},
	} {
		eps, err := timeFuzz(cell.cfg, s.Counts.FuzzExecs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cell.name, err)
		}
		s.ExecsPerSec[cell.name] = eps
		reg.SetWall("execs_per_sec."+cell.name, eps)
	}

	ns, err := timeRestore(s.Counts.RestoreCycles)
	if err != nil {
		return nil, fmt.Errorf("snapshot_restore: %w", err)
	}
	s.NsPerOp = map[string]float64{"snapshot_restore": ns}
	reg.SetWall("ns_per_op.snapshot_restore", ns)
	return s, nil
}

// measureProfiles times the echo-victim fuzz campaign (production trace
// tier, DEP on) once per layout profile with identical budgets.
func measureProfiles(quick bool, reg *telemetry.Registry) (*benchfmt.ProfilesSnapshot, error) {
	s := &benchfmt.ProfilesSnapshot{Schema: benchfmt.SchemaVersion, Tool: benchfmt.ToolProfiles, Quick: quick}
	s.Counts.FuzzExecs = 1 << 18
	if quick {
		s.Counts.FuzzExecs = 1 << 13
	}

	savedB, savedT := cpu.UseBlockEngine, cpu.UseTraceEngine
	defer func() { cpu.UseBlockEngine, cpu.UseTraceEngine = savedB, savedT }()
	cpu.UseBlockEngine, cpu.UseTraceEngine = true, true

	s.ExecsPerSec = map[string]float64{}
	for _, name := range layout.Names() {
		cfg := fuzz.Config{Name: "echo", Source: echoVictim, Seed: 1, DEP: true, Profile: name}
		eps, err := timeFuzz(cfg, s.Counts.FuzzExecs)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", name, err)
		}
		s.ExecsPerSec[name] = eps
		reg.SetWall("execs_per_sec."+name, eps)
	}
	return s, nil
}

// chainCPU builds a bare machine looping through nblocks two-instruction
// basic blocks (add esi,1; jmp next), the last jumping back to the
// first — the dispatch-bound workload the trace tier targets. nblocks=1
// degenerates to the classic tight loop.
func chainCPU(nblocks int) (*cpu.CPU, error) {
	var src strings.Builder
	src.WriteString("\t.text\n")
	for i := 0; i < nblocks; i++ {
		fmt.Fprintf(&src, "b%d:\n\tadd esi, 1\n\tjmp b%d\n", i, (i+1)%nblocks)
	}
	img := asm.MustAssemble("chain", src.String())
	m := mem.New()
	if err := m.Map(0x1000, mem.PageSize, mem.RX); err != nil {
		return nil, err
	}
	if err := m.LoadRaw(0x1000, img.Text); err != nil {
		return nil, err
	}
	c := cpu.New(m)
	c.IP = 0x1000
	return c, nil
}

// timeChain measures steady-state ns/instr: warm the caches past every
// hotness gate, rewind the architectural state, then time one Run of
// exactly instrs steps.
func timeChain(nblocks, instrs int, ts *cpu.TraceStats) (float64, error) {
	c, err := chainCPU(nblocks)
	if err != nil {
		return 0, err
	}
	c.TraceStats = ts
	saved := c.SaveArch()
	c.Run(2048)
	c.RestoreArch(saved)
	start := time.Now()
	if st := c.Run(uint64(instrs)); st != cpu.StepLimit {
		return 0, fmt.Errorf("state %v fault %v", st, c.Fault())
	}
	return float64(time.Since(start).Nanoseconds()) / float64(instrs), nil
}

func timeFuzz(cfg fuzz.Config, execs int) (float64, error) {
	c, err := fuzz.New(cfg)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := c.Fuzz(execs); err != nil {
		return 0, err
	}
	return float64(execs) / time.Since(start).Seconds(), nil
}

func timeRestore(cycles int) (float64, error) {
	img, err := minc.Compile("victim", echoVictim, minc.Options{})
	if err != nil {
		return 0, err
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		return 0, err
	}
	in := kernel.ScriptInput{[]byte("hello")}
	p, err := kernel.Load(ld, kernel.Config{DEP: true, Input: &in})
	if err != nil {
		return 0, err
	}
	snap := p.Snapshot()
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if st := p.Run(); st != cpu.Exited {
			return 0, fmt.Errorf("state %v fault %v", st, p.CPU.Fault())
		}
		if err := p.Restore(snap); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(cycles), nil
}

// The victims mirror the bench_test.go fuzz cells so the snapshot
// numbers line up with `go test -bench`.
const microVictim = `
void main() {
	char buf[4];
	read(0, buf, 4);
	if (buf[0] == 'F') {
		write(1, buf, 1);
	}
}`

const parserVictim = `
void main() {
	char buf[8];
	int n;
	n = read(0, buf, 8);
	if (n > 1 && buf[0] == 'O' && buf[1] == 'K') {
		write(1, buf, 2);
	}
}`

const echoVictim = `
void main() {
	char buf[16];
	read(0, buf, 64); // spatial memory-safety vulnerability
	write(1, buf, 5);
}`
