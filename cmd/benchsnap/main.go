// Command benchsnap measures the simulator's headline performance
// numbers with fixed work counts and writes them as a machine-readable
// snapshot (BENCH_trace.json). Fixed counts — not testing.B calibration
// — keep the fuzzing throughput cells comparable across runs: a
// campaign's execs/sec drifts with the execution budget, so every
// snapshot runs the same budget.
//
//	benchsnap                        # measure, write BENCH_trace.json
//	benchsnap -quick -o /tmp/s.json  # reduced counts (smoke/CI)
//	benchsnap -validate              # check the committed snapshot
//	benchsnap -validate -f /tmp/s.json -strict=false
//	benchsnap -profiles              # per-layout-profile fuzz throughput
//	benchsnap -profiles -validate    # check BENCH_profiles.json
//	benchsnap -sweep                 # harness trials/sec over the attack grids
//	benchsnap -sweep -validate       # check BENCH_sweep.json
//	benchsnap -metrics BENCH_metrics.json   # also freeze the registry
//
// -sweep measures full-pipeline trial throughput (recon, build, load,
// run, classify) over the t1, cfi and t1p grids and writes
// BENCH_sweep.json — the headline cells of the content-keyed build
// cache and the snapshot-warmed trial workers. The snapshot records
// each grid's cache and warm/cold counters and the measured speedup of
// the cached t1 grid over the same grid with caching disabled; -strict
// validation enforces the ≥5× floor.
//
// -metrics additionally freezes the measurement run's telemetry
// registry (internal/telemetry) as a metrics file: the deterministic
// engine counters of the instrumented cells plus every headline timing
// under the explicitly non-deterministic "wall" section. The file
// carries the standard "telemetry-metrics" tool tag, so -validate
// dispatches it to telemetry.ValidateMetrics like any other snapshot
// kind.
//
// -profiles measures the echo-victim fuzz campaign once per machine
// layout profile (internal/layout) and writes BENCH_profiles.json — the
// cross-profile throughput comparison that shows layout parameterization
// stays off the hot path. -validate dispatches on the snapshot's "tool"
// tag, so it checks either kind of file.
//
// -validate re-reads a snapshot and checks it without re-measuring:
// schema and shape, positive finite metrics, trace-tier sanity (a trace
// actually formed and beats the block tier on the chain workload), and
// — under -strict, for the committed snapshot — the acceptance floors
// (a ≥2× superblock speedup, a no-policy fuzz cell at ≥1M execs/sec,
// trace chain ≤ 5.9 ns/instr). Quick snapshots regenerated on slow or
// loaded CI machines validate with -strict=false, which keeps only the
// sanity checks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"softsec/internal/asm"
	"softsec/internal/cpu"
	"softsec/internal/fuzz"
	"softsec/internal/kernel"
	"softsec/internal/layout"
	"softsec/internal/mem"
	"softsec/internal/minc"
	"softsec/internal/telemetry"
)

const schemaVersion = 1

// Snapshot is the on-disk format. Map keys are fixed strings so the
// marshaled form is deterministic (encoding/json sorts map keys).
type Snapshot struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Quick  bool   `json:"quick,omitempty"`
	Counts struct {
		ChainInstrs   int `json:"chain_instrs"`
		FuzzExecs     int `json:"fuzz_execs"`
		RestoreCycles int `json:"restore_cycles"`
	} `json:"counts"`
	// NsPerInstr: step_loop, block_loop, block_chain8, trace_chain8.
	NsPerInstr map[string]float64 `json:"ns_per_instr"`
	// ExecsPerSec: fuzz_micro, fuzz_parser, fuzz_cfi_coarse, fuzz_cfi_fine.
	ExecsPerSec map[string]float64 `json:"execs_per_sec"`
	// NsPerOp: snapshot_restore.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	Trace   TraceSummary       `json:"trace"`
}

// ProfilesSnapshot is the on-disk format of -profiles mode
// (BENCH_profiles.json): fuzz-campaign throughput of the echo victim on
// every machine layout profile (internal/layout). The cell answers
// "does parameterizing frame geometry and segment placement cost
// simulator throughput?" — the profiles differ only in layout, so any
// spread beyond noise would mean profile-dependent code on a hot path.
type ProfilesSnapshot struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Quick  bool   `json:"quick,omitempty"`
	Counts struct {
		FuzzExecs int `json:"fuzz_execs"`
	} `json:"counts"`
	// ExecsPerSec keys are layout profile names.
	ExecsPerSec map[string]float64 `json:"execs_per_sec"`
}

// TraceSummary records the trace-tier counters of the chain8 run — the
// proof that the trace_chain8 number actually measured superblocks.
type TraceSummary struct {
	Formed       uint64            `json:"formed"`
	Dispatches   uint64            `json:"dispatches"`
	Completions  uint64            `json:"completions"`
	LoopBacks    uint64            `json:"loopbacks"`
	SideExits    uint64            `json:"side_exits"`
	StaleExits   uint64            `json:"stale_exits"`
	AvgLen       float64           `json:"avg_len"`
	SideExitRate float64           `json:"side_exit_rate"`
	LenHist      map[string]uint64 `json:"len_hist"`
}

func main() {
	var (
		out      = flag.String("o", "", "snapshot file to write (default BENCH_trace.json, BENCH_profiles.json with -profiles)")
		validate = flag.Bool("validate", false, "validate a snapshot instead of measuring")
		file     = flag.String("f", "", "snapshot file to validate (default like -o)")
		quick    = flag.Bool("quick", false, "reduced work counts (smoke runs)")
		strict   = flag.Bool("strict", true, "with -validate: enforce the absolute acceptance floors")
		profiles = flag.Bool("profiles", false, "measure fuzz throughput per machine layout profile instead of the trace-tier cells")
		sweep    = flag.Bool("sweep", false, "measure harness trial throughput over the attack grids (build cache + warm workers)")
		metrics  = flag.String("metrics", "", "also freeze the measurement's telemetry registry as a metrics file")
	)
	flag.Parse()
	def := "BENCH_trace.json"
	if *profiles {
		def = "BENCH_profiles.json"
	}
	if *sweep {
		def = "BENCH_sweep.json"
	}
	if *out == "" {
		*out = def
	}
	if *file == "" {
		*file = def
	}

	if *validate {
		if err := validateFile(*file, *strict); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: ok\n", *file)
		return
	}

	var snap any
	var err error
	reg := telemetry.NewRegistry()
	switch {
	case *profiles:
		snap, err = measureProfiles(*quick, reg)
	case *sweep:
		snap, err = measureSweep(*quick, reg)
	default:
		snap, err = measure(*quick, reg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	if *metrics != "" {
		mb, err := reg.MetricsJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metrics, mb, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metrics)
	}
	switch s := snap.(type) {
	case *Snapshot:
		for k, v := range s.NsPerInstr {
			fmt.Printf("  %-18s %8.2f ns/instr\n", k, v)
		}
		for k, v := range s.ExecsPerSec {
			fmt.Printf("  %-18s %8.0f execs/sec\n", k, v)
		}
		for k, v := range s.NsPerOp {
			fmt.Printf("  %-18s %8.1f ns/op\n", k, v)
		}
	case *ProfilesSnapshot:
		for _, name := range layout.Names() {
			fmt.Printf("  %-18s %8.0f execs/sec\n", name, s.ExecsPerSec[name])
		}
	case *SweepSnapshot:
		for _, g := range append(append([]string(nil), sweepGrids...), "t1-uncached") {
			c := s.Grids[g]
			fmt.Printf("  %-12s %8.0f trials/sec  (hits=%d misses=%d warm=%d cold=%d)\n",
				g, c.TrialsPerSec, c.CacheHits, c.CacheMisses, c.WarmRestores, c.ColdLoads)
		}
		fmt.Printf("  %-12s %8.2fx\n", "speedup", s.CacheSpeedupT1)
	}
}

// --- measurement --------------------------------------------------------

func measure(quick bool, reg *telemetry.Registry) (*Snapshot, error) {
	s := &Snapshot{Schema: schemaVersion, Tool: "benchsnap", Quick: quick}
	s.Counts.ChainInstrs = 8 << 20
	s.Counts.FuzzExecs = 1 << 20
	s.Counts.RestoreCycles = 200000
	if quick {
		s.Counts.ChainInstrs = 1 << 18
		s.Counts.FuzzExecs = 1 << 14
		s.Counts.RestoreCycles = 4096
	}

	savedB, savedT := cpu.UseBlockEngine, cpu.UseTraceEngine
	defer func() { cpu.UseBlockEngine, cpu.UseTraceEngine = savedB, savedT }()

	var trace cpu.TraceStats
	s.NsPerInstr = map[string]float64{}
	for _, cell := range []struct {
		name         string
		block, trace bool
		nblocks      int
		ts           *cpu.TraceStats
	}{
		{"step_loop", false, false, 1, nil},
		{"block_loop", true, false, 1, nil},
		{"block_chain8", true, false, 8, nil},
		{"trace_chain8", true, true, 8, &trace},
	} {
		cpu.UseBlockEngine, cpu.UseTraceEngine = cell.block, cell.trace
		ns, err := timeChain(cell.nblocks, s.Counts.ChainInstrs, cell.ts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cell.name, err)
		}
		s.NsPerInstr[cell.name] = ns
		reg.SetWall("ns_per_instr."+cell.name, ns)
	}
	if trace.Formed == 0 {
		return nil, fmt.Errorf("trace_chain8: no trace formed (measured the block tier)")
	}
	s.Trace = TraceSummary{
		Formed: trace.Formed, Dispatches: trace.Dispatches,
		Completions: trace.Completions, LoopBacks: trace.LoopBacks,
		SideExits: trace.SideExits, StaleExits: trace.StaleExits,
		AvgLen: trace.AvgLen(), SideExitRate: trace.SideExitRate(),
		LenHist: map[string]uint64{},
	}
	for l, n := range trace.LenHist {
		if n != 0 {
			s.Trace.LenHist[fmt.Sprintf("%02d", l)] = n
		}
	}
	// Freeze the instrumented cell's engine counters into the registry —
	// the deterministic side of the snapshot, same namespace the harness
	// -metrics flag writes.
	tsnap := telemetry.NewSnap()
	tsnap.Scenario = "benchsnap/trace_chain8"
	trace.Publish(tsnap)
	reg.AddSnap(tsnap)

	// Fuzz campaign throughput under the production (trace) tier.
	cpu.UseBlockEngine, cpu.UseTraceEngine = true, true
	s.ExecsPerSec = map[string]float64{}
	for _, cell := range []struct {
		name string
		cfg  fuzz.Config
	}{
		{"fuzz_micro", fuzz.Config{Name: "micro", Source: microVictim, Seed: 1, DEP: true}},
		{"fuzz_parser", fuzz.Config{Name: "parser", Source: parserVictim, Seed: 1, DEP: true}},
		{"fuzz_cfi_coarse", fuzz.Config{Name: "echo", Source: echoVictim, Seed: 1, CFI: "coarse"}},
		{"fuzz_cfi_fine", fuzz.Config{Name: "echo", Source: echoVictim, Seed: 1, CFI: "fine"}},
	} {
		eps, err := timeFuzz(cell.cfg, s.Counts.FuzzExecs)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cell.name, err)
		}
		s.ExecsPerSec[cell.name] = eps
		reg.SetWall("execs_per_sec."+cell.name, eps)
	}

	ns, err := timeRestore(s.Counts.RestoreCycles)
	if err != nil {
		return nil, fmt.Errorf("snapshot_restore: %w", err)
	}
	s.NsPerOp = map[string]float64{"snapshot_restore": ns}
	reg.SetWall("ns_per_op.snapshot_restore", ns)
	return s, nil
}

// measureProfiles times the echo-victim fuzz campaign (production trace
// tier, DEP on) once per layout profile with identical budgets.
func measureProfiles(quick bool, reg *telemetry.Registry) (*ProfilesSnapshot, error) {
	s := &ProfilesSnapshot{Schema: schemaVersion, Tool: "benchsnap-profiles", Quick: quick}
	s.Counts.FuzzExecs = 1 << 18
	if quick {
		s.Counts.FuzzExecs = 1 << 13
	}

	savedB, savedT := cpu.UseBlockEngine, cpu.UseTraceEngine
	defer func() { cpu.UseBlockEngine, cpu.UseTraceEngine = savedB, savedT }()
	cpu.UseBlockEngine, cpu.UseTraceEngine = true, true

	s.ExecsPerSec = map[string]float64{}
	for _, name := range layout.Names() {
		cfg := fuzz.Config{Name: "echo", Source: echoVictim, Seed: 1, DEP: true, Profile: name}
		eps, err := timeFuzz(cfg, s.Counts.FuzzExecs)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", name, err)
		}
		s.ExecsPerSec[name] = eps
		reg.SetWall("execs_per_sec."+name, eps)
	}
	return s, nil
}

// chainCPU builds a bare machine looping through nblocks two-instruction
// basic blocks (add esi,1; jmp next), the last jumping back to the
// first — the dispatch-bound workload the trace tier targets. nblocks=1
// degenerates to the classic tight loop.
func chainCPU(nblocks int) (*cpu.CPU, error) {
	var src strings.Builder
	src.WriteString("\t.text\n")
	for i := 0; i < nblocks; i++ {
		fmt.Fprintf(&src, "b%d:\n\tadd esi, 1\n\tjmp b%d\n", i, (i+1)%nblocks)
	}
	img := asm.MustAssemble("chain", src.String())
	m := mem.New()
	if err := m.Map(0x1000, mem.PageSize, mem.RX); err != nil {
		return nil, err
	}
	if err := m.LoadRaw(0x1000, img.Text); err != nil {
		return nil, err
	}
	c := cpu.New(m)
	c.IP = 0x1000
	return c, nil
}

// timeChain measures steady-state ns/instr: warm the caches past every
// hotness gate, rewind the architectural state, then time one Run of
// exactly instrs steps.
func timeChain(nblocks, instrs int, ts *cpu.TraceStats) (float64, error) {
	c, err := chainCPU(nblocks)
	if err != nil {
		return 0, err
	}
	c.TraceStats = ts
	saved := c.SaveArch()
	c.Run(2048)
	c.RestoreArch(saved)
	start := time.Now()
	if st := c.Run(uint64(instrs)); st != cpu.StepLimit {
		return 0, fmt.Errorf("state %v fault %v", st, c.Fault())
	}
	return float64(time.Since(start).Nanoseconds()) / float64(instrs), nil
}

func timeFuzz(cfg fuzz.Config, execs int) (float64, error) {
	c, err := fuzz.New(cfg)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := c.Fuzz(execs); err != nil {
		return 0, err
	}
	return float64(execs) / time.Since(start).Seconds(), nil
}

func timeRestore(cycles int) (float64, error) {
	img, err := minc.Compile("victim", echoVictim, minc.Options{})
	if err != nil {
		return 0, err
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		return 0, err
	}
	in := kernel.ScriptInput{[]byte("hello")}
	p, err := kernel.Load(ld, kernel.Config{DEP: true, Input: &in})
	if err != nil {
		return 0, err
	}
	snap := p.Snapshot()
	start := time.Now()
	for i := 0; i < cycles; i++ {
		if st := p.Run(); st != cpu.Exited {
			return 0, fmt.Errorf("state %v fault %v", st, p.CPU.Fault())
		}
		if err := p.Restore(snap); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(cycles), nil
}

// The victims mirror the bench_test.go fuzz cells so the snapshot
// numbers line up with `go test -bench`.
const microVictim = `
void main() {
	char buf[4];
	read(0, buf, 4);
	if (buf[0] == 'F') {
		write(1, buf, 1);
	}
}`

const parserVictim = `
void main() {
	char buf[8];
	int n;
	n = read(0, buf, 8);
	if (n > 1 && buf[0] == 'O' && buf[1] == 'K') {
		write(1, buf, 2);
	}
}`

const echoVictim = `
void main() {
	char buf[16];
	read(0, buf, 64); // spatial memory-safety vulnerability
	write(1, buf, 5);
}`

// --- validation ---------------------------------------------------------

func validateFile(path string, strict bool) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	// Dispatch on the tool tag: one -validate entry point covers both
	// snapshot kinds, and a file of the wrong kind fails on its own
	// schema instead of a confusing unknown-field error.
	var peek struct {
		Tool string `json:"tool"`
	}
	if err := json.Unmarshal(b, &peek); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if peek.Tool == "benchsnap-profiles" {
		return validateProfiles(path, b, strict)
	}
	if peek.Tool == "benchsnap-sweep" {
		return validateSweep(path, b, strict)
	}
	if peek.Tool == telemetry.MetricsTool {
		if err := telemetry.ValidateMetrics(b); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		return nil
	}
	var s Snapshot
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if s.Schema != schemaVersion {
		fail("schema %d, want %d", s.Schema, schemaVersion)
	}
	if s.Counts.ChainInstrs <= 0 || s.Counts.FuzzExecs <= 0 || s.Counts.RestoreCycles <= 0 {
		fail("non-positive work counts: %+v", s.Counts)
	}
	for _, group := range []struct {
		name string
		m    map[string]float64
		keys []string
	}{
		{"ns_per_instr", s.NsPerInstr, []string{"step_loop", "block_loop", "block_chain8", "trace_chain8"}},
		{"execs_per_sec", s.ExecsPerSec, []string{"fuzz_micro", "fuzz_parser", "fuzz_cfi_coarse", "fuzz_cfi_fine"}},
		{"ns_per_op", s.NsPerOp, []string{"snapshot_restore"}},
	} {
		for _, k := range group.keys {
			v, ok := group.m[k]
			if !ok {
				fail("%s: missing %q", group.name, k)
			} else if !(v > 0) || math.IsInf(v, 0) {
				fail("%s[%q] = %v, want positive finite", group.name, k, v)
			}
		}
	}

	// Trace-tier sanity: the trace_chain8 number must actually have
	// measured superblocks, and the tier must pay off on its target
	// workload. These are hardware-relative and hold on any machine.
	if s.Trace.Formed == 0 {
		fail("trace.formed = 0: chain8 never promoted to a superblock")
	}
	if s.Trace.Dispatches == 0 {
		fail("trace.dispatches = 0: superblock never ran")
	}
	if s.Trace.AvgLen < 2 || s.Trace.AvgLen > 16 {
		fail("trace.avg_len = %.2f, want within [2, 16]", s.Trace.AvgLen)
	}
	if s.Trace.SideExitRate < 0 || s.Trace.SideExitRate > 1 {
		fail("trace.side_exit_rate = %.3f, want within [0, 1]", s.Trace.SideExitRate)
	}
	bc, tc := s.NsPerInstr["block_chain8"], s.NsPerInstr["trace_chain8"]
	if bc > 0 && tc > 0 && tc >= bc {
		fail("trace_chain8 %.2f ns/instr >= block_chain8 %.2f: superblocks are not paying off", tc, bc)
	}

	if strict {
		// Acceptance floors for the committed snapshot. -validate only
		// re-reads recorded values, so these hold on any machine — but a
		// fresh *quick* snapshot from a loaded CI box may legitimately
		// miss them, hence -strict=false for regenerated smoke files.
		if bc > 0 && tc > 0 && tc > bc/2 {
			fail("trace_chain8 %.2f ns/instr > half of block_chain8 %.2f, want a >=2x superblock speedup", tc, bc)
		}
		best := math.Max(s.ExecsPerSec["fuzz_micro"], s.ExecsPerSec["fuzz_parser"])
		if best < 1e6 {
			fail("best no-policy fuzz cell %.0f execs/sec, want >= 1000000", best)
		}
		if tc > 5.9 {
			fail("trace_chain8 %.2f ns/instr, want <= 5.9", tc)
		}
	}

	if len(errs) > 0 {
		return fmt.Errorf("%s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return nil
}

// validateProfiles checks a BENCH_profiles.json snapshot: shape, one
// positive finite cell per known layout profile, and — under -strict — a
// generous absolute throughput floor plus a bounded cross-profile spread
// (layout is configuration, not a hot-path cost, so no profile may run at
// less than a quarter of the fastest).
func validateProfiles(path string, b []byte, strict bool) error {
	var s ProfilesSnapshot
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}
	if s.Schema != schemaVersion {
		fail("schema %d, want %d", s.Schema, schemaVersion)
	}
	if s.Tool != "benchsnap-profiles" {
		fail("tool %q, want benchsnap-profiles", s.Tool)
	}
	if s.Counts.FuzzExecs <= 0 {
		fail("non-positive fuzz_execs: %d", s.Counts.FuzzExecs)
	}
	best := 0.0
	for _, name := range layout.Names() {
		v, ok := s.ExecsPerSec[name]
		if !ok {
			fail("execs_per_sec: missing profile %q", name)
		} else if !(v > 0) || math.IsInf(v, 0) {
			fail("execs_per_sec[%q] = %v, want positive finite", name, v)
		} else if v > best {
			best = v
		}
	}
	for name := range s.ExecsPerSec {
		if _, err := layout.ByName(name); err != nil {
			fail("execs_per_sec: unknown profile %q", name)
		}
	}
	if strict && best > 0 {
		if best < 2e5 {
			fail("best profile cell %.0f execs/sec, want >= 200000", best)
		}
		for name, v := range s.ExecsPerSec {
			if v > 0 && v < best/4 {
				fail("profile %q %.0f execs/sec < quarter of best %.0f: layout should not cost throughput", name, v, best)
			}
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("%s:\n  %s", path, strings.Join(errs, "\n  "))
	}
	return nil
}
