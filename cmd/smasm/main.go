// Command smasm is the SM32 assembler and disassembler driver.
//
// Usage:
//
//	smasm file.s              # assemble; print section sizes and symbols
//	smasm -d file.s           # assemble then disassemble the text section
//	smasm -gadgets file.s     # mine ROP gadgets from the text section
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"softsec/internal/asm"
	"softsec/internal/attack"
	"softsec/internal/isa"
)

func main() {
	var (
		disasm  = flag.Bool("d", false, "disassemble the assembled text")
		gadgets = flag.Bool("gadgets", false, "mine RET-terminated gadgets")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: smasm [-d] [-gadgets] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	img, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("text: %d bytes, data: %d bytes, %d symbols, %d relocations\n",
		len(img.Text), len(img.Data), len(img.Symbols), len(img.Relocs))
	var names []string
	for n := range img.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := img.Symbols[n]
		vis := "local "
		if s.Global {
			vis = "global"
		}
		fmt.Printf("  %s %s+0x%04x  %s\n", vis, s.Section, s.Off, n)
	}
	if *disasm {
		fmt.Println()
		fmt.Print(isa.Listing(isa.Disassemble(img.Text, 0)))
	}
	if *gadgets {
		fmt.Println()
		for _, g := range attack.FindGadgets(img.Text, 0, 5) {
			fmt.Println(g)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smasm:", err)
	os.Exit(1)
}
