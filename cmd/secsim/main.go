// Command secsim runs attack scenarios from the catalog under a chosen
// countermeasure configuration and reports classified outcomes.
//
// One trial (the classic mode):
//
//	secsim -attack stack-smash-inject -canary -dep
//	secsim -attack leak-assisted-ret2libc -canary -dep -aslr -seed 7 -v
//	secsim -attack jop-entry-reuse -cfi coarse          # the coarse-CFI bypass
//	secsim -attack jop-entry-reuse -cfi fine -shadowstack
//
// Many trials across a worker pool (the harness mode): each trial derives
// its own deterministic seed from -seed, re-randomizing the ASLR layout
// and canary value when those mitigations are enabled, and the aggregate
// success rate is reported. Results are independent of -jobs. The sweep
// flags (-trials/-jobs/-seed/-json/-scenarios/-group/-engine/-profile)
// are shared with cmd/attacklab through internal/harness/cli; -profile
// selects the machine layout profile (internal/layout) the victim
// platform runs — classic, canary-below-vla, or inverted-locals — and
// -engine selects the
// execution tier (step, block, or trace — bit-identical, trace fastest).
// The shared telemetry flags collect per-trial metrics: -enginestats
// prints the block/trace dispatch counters and the superblock length
// histogram, -metrics writes the merged counter registry as JSON,
// -guestprof writes a deterministic folded-stacks guest profile (and
// prints the hot-cost table), and -evtrace writes engine events as
// Chrome trace_event JSON. All four work on single trials and sweeps:
//
//	secsim -attack rop-chain -dep -engine step       # reference tier
//	secsim -attack rop-chain -dep -enginestats       # trace-tier counters
//	secsim -attack stack-smash-inject -dep -trials 8 -jobs 2 \
//	    -metrics m.json -guestprof p.txt -evtrace t.json
//
//	secsim -attack stack-smash-inject -aslr -trials 256 -jobs 8
//	secsim -attack rop-chain -canary -dep -trials 1000 -json
//
// Any registered harness scenario — including the fuzz/ campaign cells
// — can be swept directly by name, a whole group at a time, or listed:
//
//	secsim -scenario fuzz/echo/none -trials 4 -jobs 2
//	secsim -scenario mc/aslr/rop-chain -trials 256 -json
//	secsim -group fuzz -trials 2
//	secsim -scenarios
package main

import (
	"flag"
	"fmt"
	"os"

	"softsec/internal/core"
	"softsec/internal/harness"
	"softsec/internal/harness/cli"
	"softsec/internal/telemetry"
)

func main() {
	var (
		name    = flag.String("attack", "stack-smash-inject", "attack name (see -list on attacklab)")
		scen    = flag.String("scenario", "", "sweep a registered harness scenario by name (see -scenarios); the cell's config is baked in, so -attack and the mitigation flags are ignored")
		canary  = flag.Bool("canary", false, "stack canaries")
		dep     = flag.Bool("dep", false, "Data Execution Prevention")
		aslr    = flag.Bool("aslr", false, "ASLR")
		checked = flag.Bool("checked", false, "checked dialect + fortified libc")
		shadow  = flag.Bool("shadowstack", false, "hardware shadow stack (exact backward-edge CFI)")
		cfiLvl  = flag.String("cfi", "", "control-flow integrity precision: coarse or fine (label-table CFI over the recovered CFG)")
		verbose = flag.Bool("v", false, "print victim source and output")
		sweep   cli.Sweep
	)
	sweep.Register(flag.CommandLine, 42)
	flag.Parse()
	if err := sweep.ApplyEngine(); err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(2)
	}
	if _, err := sweep.LayoutProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(2)
	}

	if *scen != "" && (sweep.Group != "" || sweep.List) {
		fmt.Fprintln(os.Stderr, "secsim: -scenario is mutually exclusive with -group/-scenarios (one cell, one group, or a listing — not several)")
		os.Exit(2)
	}
	if *scen != "" || sweep.List || sweep.Group != "" {
		// Registered scenarios bake in their own victim and mitigation
		// config; refuse silently-ignored flags rather than sweep a
		// configuration the user did not ask for.
		for _, conflicting := range []struct {
			set  bool
			name string
		}{{*canary, "-canary"}, {*dep, "-dep"}, {*aslr, "-aslr"}, {*checked, "-checked"},
			{*shadow, "-shadowstack"}, {*cfiLvl != "", "-cfi"}} {
			if conflicting.set {
				fmt.Fprintf(os.Stderr, "secsim: %s has no effect with -scenario/-scenarios/-group (the cell's mitigation config is baked in)\n", conflicting.name)
				os.Exit(2)
			}
		}
		runScenarios(*scen, &sweep)
		return
	}

	var spec *core.AttackSpec
	for _, a := range core.Attacks() {
		if a.Name == *name {
			a := a
			spec = &a
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "secsim: unknown attack %q (try attacklab -list)\n", *name)
		os.Exit(2)
	}
	if *cfiLvl != "" {
		if _, ok := core.CFIPrecisionByName(*cfiLvl); !ok {
			fmt.Fprintf(os.Stderr, "secsim: unknown -cfi precision %q (want coarse or fine)\n", *cfiLvl)
			os.Exit(2)
		}
	}
	m := core.Mitigations{
		Canary: *canary, CanarySeed: 7,
		DEP:  *dep,
		ASLR: *aslr, ASLRSeed: sweep.Seed,
		Checked:     *checked,
		ShadowStack: *shadow,
		CFI:         *cfiLvl,
		Profile:     sweep.Profile,
	}

	// -runlog implies sweep mode: run records are per-sweep artifacts
	// (report + merged metrics), so a single trial runs as a 1-trial
	// sweep rather than growing a second record shape.
	if sweep.Trials > 1 || sweep.JSON || sweep.RunLog != "" {
		runSweep(*spec, m, &sweep)
		return
	}

	s, err := spec.Scenario(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println("victim program:")
		fmt.Println(spec.Victim)
	}
	tspec := sweep.TelemetrySpec()
	res, snap, err := core.RunCollected(s, m, tspec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	fmt.Printf("attack:     %s (%s)\n", spec.Name, spec.Technique)
	fmt.Printf("mitigation: %s\n", m)
	fmt.Printf("outcome:    %s\n", res.Outcome)
	fmt.Printf("final:      %v (exit %d)\n", res.State, res.Exit)
	if f := res.Proc.CPU.Fault(); f != nil {
		fmt.Printf("fault:      %v\n", f)
	}
	if *verbose {
		fmt.Printf("output:     %q\n", res.Output)
	}
	if tspec != nil {
		// One-trial registry: same artifacts as a sweep, one shard.
		reg := telemetry.NewRegistry()
		snap.Scenario = "secsim/" + spec.Name
		reg.AddSnap(snap)
		if err := sweep.WriteOutputs(reg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "secsim:", err)
			os.Exit(1)
		}
	}
	if res.Outcome == core.Compromised {
		os.Exit(1)
	}
}

// runScenarios drives the registered-scenario modes: -scenarios listing,
// -group sweeps, and the single-scenario -scenario sweep — the generic
// driver for cells that are not plain (attack, mitigation) pairs, like
// the fuzz/ campaign cells.
func runScenarios(name string, sweep *cli.Sweep) {
	reg := harness.NewRegistry()
	if err := core.RegisterScenariosFor(reg, sweep.Profile); err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	if sweep.List {
		if err := sweep.PrintScenarios(os.Stdout, reg); err != nil {
			fmt.Fprintln(os.Stderr, "secsim:", err)
			os.Exit(2)
		}
		return
	}
	var scs []harness.Scenario
	if name != "" {
		sc, ok := reg.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "secsim: unknown scenario %q (try -scenarios)\n", name)
			os.Exit(2)
		}
		scs = []harness.Scenario{sc}
	} else {
		var err error
		scs, err = cli.Select(reg, sweep.Group)
		if err != nil {
			fmt.Fprintln(os.Stderr, "secsim:", err)
			os.Exit(2)
		}
	}
	rep, err := sweep.Run(os.Stdout, scs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	if !sweep.JSON && len(rep.Cells) == 1 {
		if c := rep.Cells[0]; c.Note != "" {
			fmt.Printf("note: %s\n", c.Note)
		}
	}
}

// runSweep executes the (attack, mitigation) cell as a parallel trial
// sweep and exits 1 when any trial was compromised (mirroring the
// single-trial exit convention).
func runSweep(spec core.AttackSpec, m core.Mitigations, sweep *cli.Sweep) {
	sc := core.TrialScenario(spec, m, true)
	if !sweep.JSON {
		fmt.Printf("attack:     %s (%s)\n", spec.Name, spec.Technique)
		fmt.Printf("mitigation: %s\n", m)
	}
	rep, err := sweep.Run(os.Stdout, []harness.Scenario{sc})
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	c := rep.Cells[0]
	if c.Errors > 0 {
		fmt.Fprintf(os.Stderr, "secsim: %d/%d trials errored: %s\n", c.Errors, c.Trials, c.FirstError)
		os.Exit(1)
	}
	if c.Successes > 0 {
		os.Exit(1)
	}
}
