// Command secsim runs one attack scenario from the catalog under a chosen
// countermeasure configuration and reports the classified outcome.
//
// Usage:
//
//	secsim -attack stack-smash-inject -canary -dep
//	secsim -attack leak-assisted-ret2libc -canary -dep -aslr -seed 7 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"softsec/internal/core"
)

func main() {
	var (
		name    = flag.String("attack", "stack-smash-inject", "attack name (see attacklab -list)")
		canary  = flag.Bool("canary", false, "stack canaries")
		dep     = flag.Bool("dep", false, "Data Execution Prevention")
		aslr    = flag.Bool("aslr", false, "ASLR")
		seed    = flag.Int64("seed", 42, "ASLR seed")
		checked = flag.Bool("checked", false, "checked dialect + fortified libc")
		verbose = flag.Bool("v", false, "print victim source and output")
	)
	flag.Parse()

	var spec *core.AttackSpec
	for _, a := range core.Attacks() {
		if a.Name == *name {
			a := a
			spec = &a
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "secsim: unknown attack %q (try attacklab -list)\n", *name)
		os.Exit(2)
	}
	m := core.Mitigations{
		Canary: *canary, CanarySeed: 7,
		DEP:  *dep,
		ASLR: *aslr, ASLRSeed: *seed,
		Checked: *checked,
	}
	s, err := spec.Scenario(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println("victim program:")
		fmt.Println(spec.Victim)
	}
	res, err := core.Run(s, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	fmt.Printf("attack:     %s (%s)\n", spec.Name, spec.Technique)
	fmt.Printf("mitigation: %s\n", m)
	fmt.Printf("outcome:    %s\n", res.Outcome)
	fmt.Printf("final:      %v (exit %d)\n", res.State, res.Exit)
	if f := res.Proc.CPU.Fault(); f != nil {
		fmt.Printf("fault:      %v\n", f)
	}
	if *verbose {
		fmt.Printf("output:     %q\n", res.Output)
	}
	if res.Outcome == core.Compromised {
		os.Exit(1)
	}
}
