// Command secsim runs attack scenarios from the catalog under a chosen
// countermeasure configuration and reports classified outcomes.
//
// One trial (the classic mode):
//
//	secsim -attack stack-smash-inject -canary -dep
//	secsim -attack leak-assisted-ret2libc -canary -dep -aslr -seed 7 -v
//
// Many trials across a worker pool (the harness mode): each trial derives
// its own deterministic seed from -seed, re-randomizing the ASLR layout
// and canary value when those mitigations are enabled, and the aggregate
// success rate is reported. Results are independent of -jobs.
//
//	secsim -attack stack-smash-inject -aslr -trials 256 -jobs 8
//	secsim -attack rop-chain -canary -dep -trials 1000 -json
//
// Any registered harness scenario — including the fuzz/ campaign cells —
// can be swept directly by name:
//
//	secsim -scenario fuzz/echo/none -trials 4 -jobs 2
//	secsim -scenario mc/aslr/rop-chain -trials 256 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"softsec/internal/core"
	"softsec/internal/harness"
)

func main() {
	var (
		name    = flag.String("attack", "stack-smash-inject", "attack name (see attacklab -list)")
		scen    = flag.String("scenario", "", "sweep a registered harness scenario by name (see attacklab -scenarios); the cell's config is baked in, so -attack and the mitigation flags are ignored")
		canary  = flag.Bool("canary", false, "stack canaries")
		dep     = flag.Bool("dep", false, "Data Execution Prevention")
		aslr    = flag.Bool("aslr", false, "ASLR")
		seed    = flag.Int64("seed", 42, "ASLR seed (single trial) / base seed (sweeps)")
		checked = flag.Bool("checked", false, "checked dialect + fortified libc")
		verbose = flag.Bool("v", false, "print victim source and output")
		trials  = flag.Int("trials", 1, "number of independent trials")
		jobs    = flag.Int("jobs", runtime.NumCPU(), "worker-pool width for sweeps")
		asJSON  = flag.Bool("json", false, "emit the aggregate report as JSON")
	)
	flag.Parse()

	if *scen != "" {
		// A registered scenario bakes in its own victim and mitigation
		// config; refuse silently-ignored flags rather than sweep a
		// configuration the user did not ask for.
		for _, conflicting := range []struct {
			set  bool
			name string
		}{{*canary, "-canary"}, {*dep, "-dep"}, {*aslr, "-aslr"}, {*checked, "-checked"}} {
			if conflicting.set {
				fmt.Fprintf(os.Stderr, "secsim: %s has no effect with -scenario (the cell's mitigation config is baked in)\n", conflicting.name)
				os.Exit(2)
			}
		}
		runScenario(*scen, *trials, *jobs, *seed, *asJSON)
		return
	}

	var spec *core.AttackSpec
	for _, a := range core.Attacks() {
		if a.Name == *name {
			a := a
			spec = &a
			break
		}
	}
	if spec == nil {
		fmt.Fprintf(os.Stderr, "secsim: unknown attack %q (try attacklab -list)\n", *name)
		os.Exit(2)
	}
	m := core.Mitigations{
		Canary: *canary, CanarySeed: 7,
		DEP:  *dep,
		ASLR: *aslr, ASLRSeed: *seed,
		Checked: *checked,
	}

	if *trials > 1 || *asJSON {
		runSweep(*spec, m, *trials, *jobs, *seed, *asJSON)
		return
	}

	s, err := spec.Scenario(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Println("victim program:")
		fmt.Println(spec.Victim)
	}
	res, err := core.Run(s, m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	fmt.Printf("attack:     %s (%s)\n", spec.Name, spec.Technique)
	fmt.Printf("mitigation: %s\n", m)
	fmt.Printf("outcome:    %s\n", res.Outcome)
	fmt.Printf("final:      %v (exit %d)\n", res.State, res.Exit)
	if f := res.Proc.CPU.Fault(); f != nil {
		fmt.Printf("fault:      %v\n", f)
	}
	if *verbose {
		fmt.Printf("output:     %q\n", res.Output)
	}
	if res.Outcome == core.Compromised {
		os.Exit(1)
	}
}

// runScenario sweeps one registered harness scenario by name — the
// generic driver for cells that are not plain (attack, mitigation)
// pairs, like the fuzz/ campaign cells.
func runScenario(name string, trials, jobs int, baseSeed int64, asJSON bool) {
	reg := harness.NewRegistry()
	if err := core.RegisterScenarios(reg); err != nil {
		fmt.Fprintln(os.Stderr, "secsim:", err)
		os.Exit(1)
	}
	sc, ok := reg.Lookup(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "secsim: unknown scenario %q (try attacklab -scenarios)\n", name)
		os.Exit(2)
	}
	rep := harness.Run([]harness.Scenario{sc},
		harness.Options{Trials: trials, Jobs: jobs, BaseSeed: baseSeed})
	if asJSON {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "secsim:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
		return
	}
	fmt.Print(rep.Render())
	if c := rep.Cells[0]; c.Note != "" {
		fmt.Printf("note: %s\n", c.Note)
	}
}

// runSweep executes the (attack, mitigation) cell as a parallel trial
// sweep and exits 1 when any trial was compromised (mirroring the
// single-trial exit convention).
func runSweep(spec core.AttackSpec, m core.Mitigations, trials, jobs int, baseSeed int64, asJSON bool) {
	sc := core.TrialScenario(spec, m, true)
	rep := harness.Run([]harness.Scenario{sc},
		harness.Options{Trials: trials, Jobs: jobs, BaseSeed: baseSeed})
	if asJSON {
		b, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "secsim:", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(b, '\n'))
	} else {
		fmt.Printf("attack:     %s (%s)\n", spec.Name, spec.Technique)
		fmt.Printf("mitigation: %s\n", m)
		fmt.Print(rep.Render())
	}
	c := rep.Cells[0]
	if c.Errors > 0 {
		fmt.Fprintf(os.Stderr, "secsim: %d/%d trials errored: %s\n", c.Errors, c.Trials, c.FirstError)
		os.Exit(1)
	}
	if c.Successes > 0 {
		os.Exit(1)
	}
}
