// Command minc is the MinC compiler driver: it compiles a MinC source file
// to SM32 assembly, or compiles+links+runs it on the simulated platform
// with selectable countermeasures.
//
// Usage:
//
//	minc -S file.c                 # emit assembly
//	minc -run [-canary] [-bounds] [-dep] [-aslr -seed N] [-in "text"] file.c
//	minc -analyze [-paranoid] file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"softsec/internal/cpu"
	"softsec/internal/kernel"
	"softsec/internal/minc"
	"softsec/internal/minc/analysis"
)

func main() {
	var (
		emitAsm  = flag.Bool("S", false, "emit SM32 assembly and exit")
		run      = flag.Bool("run", false, "compile, link against libc, load and run")
		doAna    = flag.Bool("analyze", false, "run the static analyzer")
		paranoid = flag.Bool("paranoid", false, "paranoid analysis mode")
		canary   = flag.Bool("canary", false, "compile with stack canaries")
		bounds   = flag.Bool("bounds", false, "compile the checked dialect (+ fortified libc)")
		dep      = flag.Bool("dep", true, "load with Data Execution Prevention")
		aslr     = flag.Bool("aslr", false, "load with ASLR")
		seed     = flag.Int64("seed", 1, "ASLR seed")
		input    = flag.String("in", "", "bytes fed to the program's first read()")
		trace    = flag.Bool("trace", false, "trace syscalls")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minc [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *doAna {
		findings, err := analysis.Analyze(flag.Arg(0), string(src), analysis.Options{Paranoid: *paranoid})
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}

	opt := minc.Options{Canary: *canary, BoundsCheck: *bounds}
	if *emitAsm {
		text, err := minc.CompileToAsm(flag.Arg(0), string(src), opt)
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
		return
	}
	if !*run {
		if _, err := minc.Compile(flag.Arg(0), string(src), opt); err != nil {
			fatal(err)
		}
		fmt.Println("ok")
		return
	}

	img, err := minc.Compile("prog", string(src), opt)
	if err != nil {
		fatal(err)
	}
	ld, err := kernel.Link(kernel.Libc(), img)
	if err != nil {
		fatal(err)
	}
	cfg := kernel.Config{
		DEP: *dep, ASLR: *aslr, ASLRSeed: *seed,
		CheckedLibc: *bounds, TraceSyscalls: *trace,
	}
	if *input != "" {
		in := kernel.ScriptInput{[]byte(*input)}
		cfg.Input = &in
	}
	p, err := kernel.Load(ld, cfg)
	if err != nil {
		fatal(err)
	}
	st := p.Run()
	os.Stdout.Write(p.Output.Bytes())
	if *trace {
		for _, l := range p.SyscallLog {
			fmt.Fprintln(os.Stderr, "syscall:", l)
		}
	}
	switch st {
	case cpu.Exited:
		fmt.Fprintf(os.Stderr, "\n[exit %d, %d instructions]\n", p.CPU.ExitCode(), p.CPU.Steps)
		os.Exit(int(p.CPU.ExitCode()) & 0x7F)
	default:
		fmt.Fprintf(os.Stderr, "\n[%v: %v]\n", st, p.CPU.Fault())
		os.Exit(128)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minc:", err)
	os.Exit(1)
}
