// Command attacklab regenerates the reproduction's headline tables:
//
//	attacklab                       # T1: attack x countermeasure matrix
//	attacklab -machine              # T3: isolation x machine-code attacker
//	attacklab -list                 # list the attack catalog
//	attacklab -scenarios            # list every registered harness scenario
//
// With -trials > 1 the matrices become Monte-Carlo sweeps: every cell
// runs that many independent trials across a -jobs wide worker pool,
// re-randomizing ASLR layouts and canary values per trial, and the
// output is a success-rate table (or a JSON report with -json). Results
// are independent of -jobs.
//
//	attacklab -trials 256 -jobs 8
//	attacklab -group mc-aslr -trials 1000 -json
//
// The fuzz group runs coverage-guided fuzzing campaigns (internal/fuzz)
// instead of replaying hand-written exploits: each trial is a complete
// deterministic campaign, and the cells measure discovery cost per
// mitigation stack.
//
//	attacklab -group fuzz -scenarios     # list the campaign cells
//	attacklab -group fuzz -trials 4 -jobs 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"softsec/internal/core"
	"softsec/internal/harness"
)

func main() {
	var (
		machine   = flag.Bool("machine", false, "run the machine-code attacker (T3) matrix")
		list      = flag.Bool("list", false, "list the attack catalog")
		scenarios = flag.Bool("scenarios", false, "list every registered harness scenario")
		group     = flag.String("group", "", "restrict the sweep to one scenario group (t1, t3, mc-aslr, mc-canary, fuzz)")
		trials    = flag.Int("trials", 1, "independent trials per cell")
		jobs      = flag.Int("jobs", runtime.NumCPU(), "worker-pool width")
		seed      = flag.Int64("seed", 0, "base seed for per-trial seed derivation")
		asJSON    = flag.Bool("json", false, "emit the aggregate report as JSON")
	)
	flag.Parse()

	if *list {
		for _, a := range core.Attacks() {
			fmt.Printf("%-24s %s\n", a.Name, a.Technique)
		}
		return
	}

	reg := harness.NewRegistry()
	if err := core.RegisterScenarios(reg); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
	if *scenarios {
		scens := reg.All()
		if *group != "" {
			scens = reg.Group(*group)
			if len(scens) == 0 {
				fmt.Fprintf(os.Stderr, "attacklab: no scenarios in group %q (try -scenarios)\n", *group)
				os.Exit(2)
			}
		}
		for _, s := range scens {
			fmt.Printf("%-44s group=%s\n", s.Name, s.Group)
		}
		return
	}

	// Sweep mode: run registered scenarios through the trial engine.
	if *trials > 1 || *asJSON || *group != "" {
		sel := *group
		if sel == "" {
			sel = "t1"
			if *machine {
				sel = "t3"
			}
		}
		scs := reg.Group(sel)
		if len(scs) == 0 {
			fmt.Fprintf(os.Stderr, "attacklab: no scenarios in group %q (try -scenarios)\n", sel)
			os.Exit(2)
		}
		rep := harness.Run(scs, harness.Options{Trials: *trials, Jobs: *jobs, BaseSeed: *seed})
		if *asJSON {
			b, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "attacklab:", err)
				os.Exit(1)
			}
			os.Stdout.Write(append(b, '\n'))
			return
		}
		fmt.Printf("%s — %d trials/cell (base seed %d)\n\n", sel, *trials, *seed)
		fmt.Print(rep.Render())
		return
	}

	if *machine {
		rows, err := core.RunIsolationMatrixJobs(*jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println("T3 — isolation mechanisms vs the machine-code attacker (Section IV-A)")
		fmt.Println()
		fmt.Print(core.RenderIsolation(rows))
		return
	}
	fmt.Println("T1 — attack techniques vs deployed countermeasures (Sections III-B, III-C)")
	fmt.Println()
	m := core.RunMatrixJobs(core.Attacks(), core.StandardConfigs(), *jobs)
	fmt.Print(m.Render())
}
