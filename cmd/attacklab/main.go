// Command attacklab regenerates the reproduction's headline tables:
//
//	attacklab            # T1: attack technique x countermeasure matrix
//	attacklab -machine   # T3: isolation mechanism x machine-code attacker
//	attacklab -list      # list the attack catalog
package main

import (
	"flag"
	"fmt"
	"os"

	"softsec/internal/core"
)

func main() {
	machine := flag.Bool("machine", false, "run the machine-code attacker (T3) matrix")
	list := flag.Bool("list", false, "list the attack catalog")
	flag.Parse()

	if *list {
		for _, a := range core.Attacks() {
			fmt.Printf("%-24s %s\n", a.Name, a.Technique)
		}
		return
	}
	if *machine {
		rows, err := core.RunIsolationMatrix()
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println("T3 — isolation mechanisms vs the machine-code attacker (Section IV-A)")
		fmt.Println()
		fmt.Print(core.RenderIsolation(rows))
		return
	}
	fmt.Println("T1 — attack techniques vs deployed countermeasures (Sections III-B, III-C)")
	fmt.Println()
	m := core.RunMatrix(core.Attacks(), core.StandardConfigs())
	fmt.Print(m.Render())
}
