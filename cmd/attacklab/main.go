// Command attacklab regenerates the reproduction's headline tables:
//
//	attacklab                       # T1: attack x countermeasure matrix
//	attacklab -machine              # T3: isolation x machine-code attacker
//	attacklab -list                 # list the attack catalog
//	attacklab -scenarios            # list every registered harness scenario
//
// With -trials > 1 the matrices become Monte-Carlo sweeps: every cell
// runs that many independent trials across a -jobs wide worker pool,
// re-randomizing ASLR layouts and canary values per trial, and the
// output is a success-rate table (or a JSON report with -json). Results
// are independent of -jobs. The sweep flags — including the telemetry
// flags -metrics/-guestprof/-evtrace/-enginestats — are shared with
// cmd/secsim through internal/harness/cli; giving any telemetry flag
// runs the default group as a sweep so there is something to collect.
//
//	attacklab -trials 256 -jobs 8
//	attacklab -group mc-aslr -trials 1000 -json
//	attacklab -group cfi -trials 8 -metrics cfi.json -enginestats
//
// The fuzz group runs coverage-guided fuzzing campaigns (internal/fuzz)
// instead of replaying hand-written exploits: each trial is a complete
// deterministic campaign, and the cells measure discovery cost per
// mitigation stack.
//
//	attacklab -group fuzz -scenarios     # list the campaign cells
//	attacklab -group fuzz -trials 4 -jobs 2
//
// The cfi group is the control-flow-integrity precision grid
// (internal/cfi): every hijack attack against no CFI, coarse label
// tables, fine address-taken target sets, and fine plus the hardware
// shadow stack — the coarse-vs-fine bypass story as measured cells.
//
//	attacklab -group cfi -trials 8 -jobs 2
package main

import (
	"flag"
	"fmt"
	"os"

	"softsec/internal/core"
	"softsec/internal/harness"
	"softsec/internal/harness/cli"
)

func main() {
	var (
		machine = flag.Bool("machine", false, "run the machine-code attacker (T3) matrix")
		list    = flag.Bool("list", false, "list the attack catalog")
		sweep   cli.Sweep
	)
	sweep.Register(flag.CommandLine, 0)
	flag.Parse()
	if err := sweep.ApplyEngine(); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(2)
	}
	if _, err := sweep.LayoutProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(2)
	}

	if *list {
		for _, a := range core.Attacks() {
			fmt.Printf("%-24s %s\n", a.Name, a.Technique)
		}
		return
	}

	reg := harness.NewRegistry()
	if err := core.RegisterScenariosFor(reg, sweep.Profile); err != nil {
		fmt.Fprintln(os.Stderr, "attacklab:", err)
		os.Exit(1)
	}
	if sweep.List {
		if err := sweep.PrintScenarios(os.Stdout, reg); err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(2)
		}
		return
	}

	// Sweep mode: run registered scenarios through the trial engine.
	// Telemetry flags imply it — collection is per-trial, so the legacy
	// whole-matrix mode below has nothing to attach instruments to.
	if sweep.Trials > 1 || sweep.JSON || sweep.Group != "" || sweep.TelemetrySpec() != nil {
		if sweep.Group == "" {
			sweep.Group = "t1"
			if *machine {
				sweep.Group = "t3"
			}
		}
		scs, err := cli.Select(reg, sweep.Group)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(2)
		}
		if !sweep.JSON {
			fmt.Printf("%s — %d trials/cell (base seed %d)\n\n", sweep.Group, sweep.Trials, sweep.Seed)
		}
		if _, err := sweep.Run(os.Stdout, scs); err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		return
	}

	if *machine {
		rows, err := core.RunIsolationMatrixJobs(sweep.Jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "attacklab:", err)
			os.Exit(1)
		}
		fmt.Println("T3 — isolation mechanisms vs the machine-code attacker (Section IV-A)")
		fmt.Println()
		fmt.Print(core.RenderIsolation(rows))
		return
	}
	fmt.Println("T1 — attack techniques vs deployed countermeasures (Sections III-B, III-C)")
	fmt.Println()
	cfgs := core.StandardConfigs()
	for i := range cfgs {
		cfgs[i].Profile = sweep.Profile
	}
	m := core.RunMatrixJobs(core.Attacks(), cfgs, sweep.Jobs)
	fmt.Print(m.Render())
}
