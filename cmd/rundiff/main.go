// Command rundiff compares two runs from a run ledger (or two record
// files) and reports outcome flips per cell, metric-counter deltas and
// wall-clock throughput ratios, optionally gated by regression floors.
//
//	rundiff -dir runs                      # last two runs
//	rundiff -dir runs last~1 last          # explicit refs
//	rundiff -dir runs 3 7                  # ledger sequence numbers
//	rundiff a.json b.json                  # record files, no ledger
//	rundiff -dir runs -floor trials_per_sec=0.8 last~1 last
//	rundiff -dir runs -list                # show the ledger
//
// Exit status: 0 when no regression (flips are reported but only fail
// with -failflips), 1 when a floor/ceiling is violated or -failflips
// saw flips, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"softsec/internal/runlog"
)

// ratioFlag collects repeatable name=ratio pairs.
type ratioFlag map[string]float64

func (f ratioFlag) String() string {
	parts := make([]string, 0, len(f))
	for k, v := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (f ratioFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=ratio, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || v <= 0 {
		return fmt.Errorf("bad ratio in %q", s)
	}
	f[name] = v
	return nil
}

func main() {
	var (
		dir       = flag.String("dir", "", "run ledger directory (as written by -runlog)")
		list      = flag.Bool("list", false, "list the ledger and exit")
		asJSON    = flag.Bool("json", false, "emit the diff as JSON instead of text")
		failFlips = flag.Bool("failflips", false, "exit 1 when any outcome flipped (default: flips are reported, not fatal)")
		floors    = ratioFlag{}
		ceils     = ratioFlag{}
	)
	flag.Var(floors, "floor", "wall metric regression floor, name=minratio (B/A); repeatable. Example: trials_per_sec=0.8")
	flag.Var(ceils, "ceil", "wall metric regression ceiling, name=maxratio (B/A); repeatable. Example: elapsed_sec=1.25")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rundiff [-dir ledger] [flags] [refA refB | fileA fileB]\n\n"+
			"Refs: 'last', 'last~N', a ledger seq, or a content-ID prefix.\n"+
			"With no refs, compares the ledger's last two runs.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		if *dir == "" {
			fatal(2, "rundiff: -list needs -dir")
		}
		if err := printLedger(*dir); err != nil {
			fatal(2, "rundiff: %v", err)
		}
		return
	}

	a, b, err := loadPair(*dir, flag.Args())
	if err != nil {
		fatal(2, "rundiff: %v", err)
	}
	d, err := runlog.Compare(a, b, runlog.Options{Floors: floors, Ceils: ceils})
	if err != nil {
		fatal(2, "rundiff: %v", err)
	}
	if *asJSON {
		out, err := json.MarshalIndent(d, "", "  ")
		if err != nil {
			fatal(2, "rundiff: %v", err)
		}
		fmt.Println(string(out))
	} else {
		fmt.Print(d.Render())
	}
	if len(d.Regressions) > 0 || (*failFlips && d.Flips > 0) {
		os.Exit(1)
	}
}

// loadPair resolves the two runs to compare: two ledger refs, two
// record file paths, or (with -dir and no args) the last two runs.
func loadPair(dir string, args []string) (a, b *runlog.Record, err error) {
	if dir == "" {
		if len(args) != 2 {
			return nil, nil, fmt.Errorf("need two record files (or -dir with ledger refs)")
		}
		if a, err = loadFile(args[0]); err != nil {
			return nil, nil, err
		}
		if b, err = loadFile(args[1]); err != nil {
			return nil, nil, err
		}
		return a, b, nil
	}
	st, err := runlog.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	refA, refB := "last~1", "last"
	switch len(args) {
	case 0:
	case 2:
		refA, refB = args[0], args[1]
	default:
		return nil, nil, fmt.Errorf("need zero or two run refs, got %d", len(args))
	}
	load := func(ref string) (*runlog.Record, error) {
		// A ref that names an existing file wins, so ledger refs and
		// record files mix: rundiff -dir runs baseline.json last
		if _, statErr := os.Stat(ref); statErr == nil {
			return loadFile(ref)
		}
		e, err := st.Resolve(ref)
		if err != nil {
			return nil, err
		}
		return st.Load(e)
	}
	if a, err = load(refA); err != nil {
		return nil, nil, err
	}
	if b, err = load(refB); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

func loadFile(path string) (*runlog.Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := runlog.Load(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func printLedger(dir string) error {
	st, err := runlog.Open(dir)
	if err != nil {
		return err
	}
	entries, err := st.Entries()
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		fmt.Println("(empty ledger)")
		return nil
	}
	fmt.Printf("%4s  %-25s  %-9s  %-6s  %-24s  %6s  %s\n",
		"seq", "id", "tool", "kind", "label", "trials", "seed")
	for _, e := range entries {
		fmt.Printf("%4d  %-25s  %-9s  %-6s  %-24s  %6d  %d\n",
			e.Seq, e.ID, e.Tool, e.Kind, e.Label, e.Trials, e.Seed)
	}
	return nil
}

func fatal(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(code)
}
