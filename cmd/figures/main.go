// Command figures regenerates the paper's Figures 1-4 from the running
// simulator.
//
// Usage:
//
//	figures            # all four figures
//	figures -fig 3     # one figure
package main

import (
	"flag"
	"fmt"
	"os"

	"softsec/internal/figures"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-4); 0 = all")
	flag.Parse()

	render := map[int]func() (string, error){
		1: figures.Fig1,
		2: figures.Fig2,
		3: figures.Fig3,
		4: figures.Fig4,
	}
	order := []int{1, 2, 3, 4}
	if *fig != 0 {
		order = []int{*fig}
	}
	for _, n := range order {
		f, ok := render[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: no figure %d\n", n)
			os.Exit(2)
		}
		out, err := f()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Printf("==== Figure %d ====\n\n%s\n", n, out)
	}
}
