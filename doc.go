// Package softsec is a full reproduction of "Software Security:
// Vulnerabilities and Countermeasures for Two Attacker Models" (Piessens &
// Verbauwhede, DATE 2016) as an executable system: a simulated 32-bit
// platform (ISA, CPU, paged memory, kernel, libc), a C-subset compiler
// with pluggable countermeasures, attack toolkits for the I/O and
// machine-code attacker models, and the isolation mechanisms of Section IV
// (bytecode VM, SFI, capability machine, protected module architecture
// with attestation, sealing and state continuity).
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// experiment index, and the examples/ directory for guided tours. The
// benchmarks in bench_test.go regenerate every table and figure.
package softsec
